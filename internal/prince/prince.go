// Package prince implements the PRINCE lightweight 64-bit block cipher
// (Borghoff et al., ASIACRYPT 2012).
//
// The RRS paper uses PRINCE in two places: as a CTR-mode pseudo-random
// number generator for picking random swap destinations ("a low-latency
// cipher ... in CTR-mode with a 64-bit cycle counter as input"), and as the
// keyed low-latency hash inside the Collision Avoidance Table (inherited
// from MIRAGE). This package provides the block cipher, its inverse, and a
// CTR-mode generator.
//
// Conventions follow the PRINCE specification: the 64-bit state is written
// as 16 hex nibbles with nibble 0 the most significant; bit 0 of the
// matrix-layer vectors is the most significant bit of the state.
package prince

// sbox is the PRINCE S-box; sboxInv its inverse.
var sbox = [16]uint64{0xB, 0xF, 0x3, 0x2, 0xA, 0xC, 0x9, 0x1, 0x6, 0x7, 0x8, 0x0, 0xE, 0x5, 0xD, 0x4}

var sboxInv [16]uint64

// rc holds the 12 round constants. rc[11] is the alpha-reflection constant.
var rc = [12]uint64{
	0x0000000000000000,
	0x13198a2e03707344,
	0xa4093822299f31d0,
	0x082efa98ec4e6c89,
	0x452821e638d01377,
	0xbe5466cf34e90c6c,
	0x7ef84f78fd955cb1,
	0x85840851f1ac43aa,
	0xc882d32f25323c54,
	0x64a51195e0e3610d,
	0xd3b5a399ca0c2399,
	0xc0ac29b7c97c50dd,
}

// Alpha is the reflection constant: Decrypt(k0,k1) == Encrypt(k0', k1^Alpha).
const Alpha = 0xc0ac29b7c97c50dd

// m16 holds, for the two 16x16 binary matrices M̂0 and M̂1, the output mask
// contributed by each input bit (bit 0 = most significant bit of the 16-bit
// chunk). mTab are full 65536-entry lookup tables derived from m16 for speed.
var (
	m16  [2][16]uint16
	mTab [2][1 << 16]uint16
)

// shift-rows permutation on nibbles (AES-style, column-major state):
// output nibble i comes from input nibble 5i mod 16. srPerm[i] gives the
// source nibble for output nibble i; srInv is its inverse.
var srPerm, srInv [16]int

func init() {
	for i, v := range sbox {
		sboxInv[v] = uint64(i)
	}

	// The four 4x4 building-block matrices: Mi is the identity with row i
	// zeroed (rows listed most-significant bit first).
	var block [4][4]uint16
	for i := 0; i < 4; i++ {
		for r := 0; r < 4; r++ {
			if r == i {
				block[i][r] = 0
			} else {
				block[i][r] = 1 << (3 - r) // row has single 1 at column r
			}
		}
	}
	// M̂0 block rows start at M0, M̂1 at M1, each row of blocks rotating.
	for which := 0; which < 2; which++ {
		for br := 0; br < 4; br++ { // block row
			for bc := 0; bc < 4; bc++ { // block column
				bi := (which + br + bc) % 4 // block index M_{bi}
				for r := 0; r < 4; r++ {
					rowBits := block[bi][r] // 4-bit row of the block
					for c := 0; c < 4; c++ {
						if rowBits&(1<<(3-c)) != 0 {
							outBit := br*4 + r // 0 = MSB of chunk
							inBit := bc*4 + c
							// input bit inBit contributes to output bit outBit
							m16[which][inBit] |= 1 << (15 - outBit)
						}
					}
				}
			}
		}
	}
	for which := 0; which < 2; which++ {
		for x := 0; x < 1<<16; x++ {
			var out uint16
			v := uint16(x)
			for b := 0; b < 16; b++ {
				if v&(1<<(15-b)) != 0 {
					out ^= m16[which][b]
				}
			}
			mTab[which][x] = out
		}
	}

	for i := 0; i < 16; i++ {
		srPerm[i] = (5 * i) % 16
	}
	for i, src := range srPerm {
		srInv[src] = i
	}

	initFast()
}

func subBytes(x uint64, box *[16]uint64) uint64 {
	var out uint64
	for i := 0; i < 16; i++ {
		nib := (x >> (60 - 4*i)) & 0xF
		out |= box[nib] << (60 - 4*i)
	}
	return out
}

// mPrime applies the involutory M' layer: diag(M̂0, M̂1, M̂1, M̂0) over the
// four 16-bit chunks (chunk 0 = most significant).
func mPrime(x uint64) uint64 {
	c0 := mTab[0][uint16(x>>48)]
	c1 := mTab[1][uint16(x>>32)]
	c2 := mTab[1][uint16(x>>16)]
	c3 := mTab[0][uint16(x)]
	return uint64(c0)<<48 | uint64(c1)<<32 | uint64(c2)<<16 | uint64(c3)
}

func permuteNibbles(x uint64, perm *[16]int) uint64 {
	var out uint64
	for i := 0; i < 16; i++ {
		nib := (x >> (60 - 4*perm[i])) & 0xF
		out |= nib << (60 - 4*i)
	}
	return out
}

// Cipher is a PRINCE instance with a fixed 128-bit key (k0 || k1).
type Cipher struct {
	k0, k0p, k1 uint64
}

// New creates a PRINCE cipher from the two 64-bit key halves.
func New(k0, k1 uint64) *Cipher {
	// k0' = (k0 >>> 1) XOR (k0 >> 63)
	k0p := (k0>>1 | k0<<63) ^ (k0 >> 63)
	return &Cipher{k0: k0, k0p: k0p, k1: k1}
}

// Encrypt enciphers one 64-bit block.
func (c *Cipher) Encrypt(m uint64) uint64 {
	return fastCore(m^c.k0, c.k1) ^ c.k0p
}

// Decrypt deciphers one 64-bit block using the alpha-reflection property.
func (c *Cipher) Decrypt(m uint64) uint64 {
	return fastCore(m^c.k0p, c.k1^Alpha) ^ c.k0
}

// core is the reference (specification-shaped) PRINCE-core, kept for
// cross-checking the table-driven fast path.
func (c *Cipher) core(s, k1 uint64) uint64 {
	s ^= k1 ^ rc[0]
	for i := 1; i <= 5; i++ {
		s = subBytes(s, &sbox)
		s = mPrime(s)
		s = permuteNibbles(s, &srPerm)
		s ^= rc[i] ^ k1
	}
	s = subBytes(s, &sbox)
	s = mPrime(s)
	s = subBytes(s, &sboxInv)
	for i := 6; i <= 10; i++ {
		s ^= rc[i] ^ k1
		s = permuteNibbles(s, &srInv)
		s = mPrime(s)
		s = subBytes(s, &sboxInv)
	}
	s ^= rc[11] ^ k1
	return s
}
