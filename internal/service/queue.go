package service

import (
	"errors"
	"sync"
)

// ErrQueueFull is returned by Manager.Submit when the job queue is at
// capacity; HTTP maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("service: job queue full")

// ErrClosed is returned when submitting to a manager that is shutting
// down.
var ErrClosed = errors.New("service: manager closed")

// ErrOverloaded is returned by Manager.Submit when admission control
// sheds the job (backlog at or over Options.AdmissionWatermark); HTTP
// maps it to 429 with a Retry-After hint.
var ErrOverloaded = errors.New("service: server overloaded, try again later")

// ErrDraining is returned by Manager.Submit while the manager drains
// for shutdown; HTTP maps it to 503 with a Retry-After hint.
var ErrDraining = errors.New("service: server draining")

// fifo is a bounded FIFO of jobs. Push never blocks (it fails fast when
// full — backpressure belongs at the API edge, not in a goroutine pile);
// Pop blocks until an item arrives or the queue closes. Close unblocks
// every waiter and drains the backlog to the caller so queued jobs can
// be failed deliberately rather than leaked.
type fifo struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []*Job
	cap    int
	closed bool
}

func newFIFO(capacity int) *fifo {
	q := &fifo{cap: capacity}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push appends j, reporting ErrQueueFull at capacity and ErrClosed
// after Close.
func (q *fifo) Push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	if len(q.items) >= q.cap {
		return ErrQueueFull
	}
	q.items = append(q.items, j)
	q.cond.Signal()
	return nil
}

// Pop removes the oldest job, blocking while the queue is open and
// empty. ok is false once the queue is closed and drained.
func (q *fifo) Pop() (j *Job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, false
	}
	j = q.items[0]
	// Slide instead of re-slicing so the backing array does not pin
	// completed jobs.
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return j, true
}

// forcePush appends j past the capacity bound. Journal replay uses it:
// a restored pending job was already admitted once, and failing it
// because the configured queue is smaller than the crashed backlog
// would make restarts lossy. The overshoot is transient — workers drain
// it before Submit admits anything new past the bound.
func (q *fifo) forcePush(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrClosed
	}
	q.items = append(q.items, j)
	q.cond.Signal()
	return nil
}

// TryPop removes the oldest job without blocking; ok is false when the
// queue is empty or closed. The work-stealing path uses it: a steal
// must never block a handler on an empty queue.
func (q *fifo) TryPop() (j *Job, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed || len(q.items) == 0 {
		return nil, false
	}
	j = q.items[0]
	copy(q.items, q.items[1:])
	q.items[len(q.items)-1] = nil
	q.items = q.items[:len(q.items)-1]
	return j, true
}

// Close marks the queue closed, wakes all poppers and returns the jobs
// still waiting (in FIFO order) so the manager can cancel them.
func (q *fifo) Close() []*Job {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil
	}
	q.closed = true
	rest := q.items
	q.items = nil
	q.cond.Broadcast()
	return rest
}

// Len reports the backlog depth.
func (q *fifo) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.items)
}
