package experiments

import (
	"fmt"
	"sort"

	"repro/internal/attack"
	"repro/internal/cat"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Figure5Row is one workload's swap count.
type Figure5Row struct {
	Workload      string
	SwapsPerEpoch float64
}

// Figure5 measures the average number of row-swaps per epoch for each
// workload under RRS (the paper reports an average of 68 per 64 ms across
// 78 workloads, with hmmer and bzip2 near 1000).
func Figure5(s Scale) ([]Figure5Row, *stats.Table, error) {
	ws := s.workloads()
	run, err := s.sweepRunner(s.spec(service.MitRRS, 0),
		service.SweepAxes{Workloads: workloadNames(ws)})
	if err != nil {
		return nil, nil, err
	}
	results, err := runAll(ws, func(w trace.Workload) (sim.Result, error) {
		return run(s.spec(service.MitRRS, 0, w))
	})
	if err != nil {
		return nil, nil, err
	}
	var rows []Figure5Row
	t := stats.NewTable("Workload", "Swaps/epoch", "Paper hot rows")
	var sum float64
	for i, w := range ws {
		rows = append(rows, Figure5Row{Workload: w.Name, SwapsPerEpoch: results[i].SwapsPerEpoch})
		t.AddRow(w.Name, results[i].SwapsPerEpoch, w.HotRows)
		sum += results[i].SwapsPerEpoch
	}
	t.AddRow("MEAN", sum/float64(len(rows)), "")
	return rows, t, nil
}

// Figure6Row is one workload's normalized performance.
type Figure6Row struct {
	Workload   string
	Normalized float64
}

// Figure6 measures the performance of RRS normalized to the unprotected
// baseline (the paper's headline: 0.4% average slowdown).
func Figure6(s Scale) ([]Figure6Row, *stats.Table, error) {
	return normalizedPerf(s, service.MitRRS, 0, "RRS")
}

func normalizedPerf(s Scale, mit string, blacklist uint32, label string) ([]Figure6Row, *stats.Table, error) {
	ws := s.workloads()
	// One sweep covers the defense and its unprotected baseline; the
	// baseline children's blacklist normalizes away, so they dedup into
	// one job per workload regardless of the defense's tracker size.
	run, err := s.sweepRunner(s.spec(mit, blacklist), service.SweepAxes{
		Mitigations: []string{service.MitNone, mit},
		Workloads:   workloadNames(ws),
	})
	if err != nil {
		return nil, nil, err
	}
	norms, err := runAll(ws, func(w trace.Workload) (float64, error) {
		norm, _, _, err := s.normalizedVia(run, s.spec(mit, blacklist, w))
		return norm, err
	})
	if err != nil {
		return nil, nil, err
	}
	var rows []Figure6Row
	t := stats.NewTable("Workload", label+" normalized perf")
	for i, w := range ws {
		rows = append(rows, Figure6Row{Workload: w.Name, Normalized: norms[i]})
		t.AddRow(w.Name, norms[i])
	}
	t.AddRow("GEOMEAN", stats.GeoMean(norms))
	return rows, t, nil
}

// Figure7 demonstrates the optimal attacker strategy against RRS (the
// random-chase pattern) and reports what it achieves: every chased row is
// swapped away after T_RRS activations and no bit flips occur.
func Figure7(epochs int) (attack.Result, *stats.Table) {
	cfg := attackScaleConfig()
	p := attack.NewRandomChase(cfg.RowHammerThreshold/6, cfg.RowsPerBank, 0xF16)
	ctl, fm := attack.NewSystem(cfg, 0, attack.Alpha2For(cfg), attackRRSFactory)
	res := attack.Run(ctl, fm, p, attack.Options{Epochs: epochs})

	rrs := ctl.Mitigation().(*core.RRS)
	st := rrs.Stats()
	t := stats.NewTable("Metric", "Value")
	t.AddRow("Attack pattern", p.Name())
	t.AddRow("Epochs attacked", epochs)
	t.AddRow("Attacker accesses", res.Accesses)
	t.AddRow("Rows chased (swaps)", st.Swaps)
	t.AddRow("Re-swaps (chance re-discoveries)", st.Reswaps)
	t.AddRow("Bit flips", res.Flips)
	return res, t
}

// Figure9Point is one extra-ways point of the CAT conflict experiment.
type Figure9Point struct {
	ExtraWays     int
	Log10Installs float64
	Measured      bool
}

// Figure9Options sizes the Monte Carlo portion.
type Figure9Options struct {
	// Sets and DemandWays define the CAT (paper: 64 sets, 14 demand ways).
	Sets       int
	DemandWays int
	// MeasureUpTo runs Monte Carlo for extra ways 1..MeasureUpTo and
	// extrapolates beyond (the paper measures 1-4 and extrapolates 5-6).
	MeasureUpTo int
	// MaxInstalls bounds each Monte Carlo run.
	MaxInstalls int64
	Trials      int
	Seed        uint64
}

// DefaultFigure9Options measures extra ways 1-3 by Monte Carlo (E = 1-2
// conflict near the capacity-fill transient; the power-of-two-choices
// growth shows from E = 3) and extrapolates 4-6 by the continued-squaring
// model, as the paper does for its own high-E points. Raise MeasureUpTo
// (and MaxInstalls) on a many-core machine for deeper anchors.
func DefaultFigure9Options() Figure9Options {
	return Figure9Options{
		Sets: 64, DemandWays: 14,
		MeasureUpTo: 3, MaxInstalls: 5e7, Trials: 3, Seed: 9,
	}
}

// Figure9 reproduces the installs-to-conflict curve.
func Figure9(o Figure9Options) ([]Figure9Point, *stats.Table) {
	measured := map[int]float64{}
	for e := 1; e <= o.MeasureUpTo; e++ {
		r := cat.ConflictExperiment{
			Sets: o.Sets, DemandWays: o.DemandWays, ExtraWays: e,
			MaxInstalls: o.MaxInstalls, Trials: o.Trials, Seed: o.Seed,
		}.Run()
		if r.Conflicted > 0 {
			measured[e] = r.MeanInstalls
		}
	}
	ext := cat.ExtrapolateInstalls(measured, 1, 6)

	var pts []Figure9Point
	t := stats.NewTable("Extra ways", "log10(installs to conflict)", "Source")
	for e := 1; e <= 6; e++ {
		v, ok := ext[e]
		if !ok {
			continue
		}
		_, meas := measured[e]
		src := "extrapolated"
		if meas {
			src = "measured"
		}
		pts = append(pts, Figure9Point{ExtraWays: e, Log10Installs: v, Measured: meas})
		t.AddRow(e, v, src)
	}
	return pts, t
}

// Figure10Point is one Row Hammer threshold multiplier's average slowdown.
type Figure10Point struct {
	Multiplier float64
	TRH        int
	GeoMean    float64
}

// Figure10 sweeps the Row Hammer threshold from 0.25x to 4x of the default
// and reports the geometric-mean normalized performance (the paper: 4.5%
// slowdown at 0.25x shrinking to ~0 at 4x).
func Figure10(s Scale) ([]Figure10Point, *stats.Table, error) {
	var pts []Figure10Point
	t := stats.NewTable("T_RH multiplier", "T_RH (scaled)", "Geomean normalized perf")
	base := s.Config().RowHammerThreshold
	mults := []float64{0.25, 0.5, 1, 2, 4}
	trhs := make([]int, len(mults))
	for i, mult := range mults {
		trhs[i] = int(float64(base) * mult)
		if trhs[i] < 6 {
			trhs[i] = 6
		}
	}
	// The whole threshold grid — every multiplier, mitigated and
	// baseline — is one sweep.
	run, err := s.sweepRunner(s.spec(service.MitRRS, 0), service.SweepAxes{
		Mitigations:         []string{service.MitNone, service.MitRRS},
		RowHammerThresholds: trhs,
		Workloads:           workloadNames(s.workloads()),
	})
	if err != nil {
		return nil, nil, err
	}
	for i, mult := range mults {
		trh := trhs[i]
		norms, err := runAll(s.workloads(), func(w trace.Workload) (float64, error) {
			spec := s.spec(service.MitRRS, 0, w)
			spec.RowHammerThreshold = trh
			norm, _, _, err := s.normalizedVia(run, spec)
			return norm, err
		})
		if err != nil {
			return nil, nil, err
		}
		g := stats.GeoMean(norms)
		pts = append(pts, Figure10Point{Multiplier: mult, TRH: trh, GeoMean: g})
		t.AddRow(fmt.Sprintf("%.2fx", mult), trh, g)
	}
	return pts, t, nil
}

// Figure11Series is one defense's sorted normalized-performance curve.
type Figure11Series struct {
	Label string
	// Sorted ascending normalized performance (the S-curve).
	Norms []float64
}

// Figure11 builds the S-curve comparison of RRS against BlockHammer with
// blacklist thresholds of 512 and 1K (scaled with the epoch).
func Figure11(s Scale) ([]Figure11Series, *stats.Table, error) {
	defenses := []struct {
		label     string
		mit       string
		blacklist uint32
	}{
		{"RRS", service.MitRRS, 0},
		{"BH-512", service.MitBlockHammer, 512},
		{"BH-1K", service.MitBlockHammer, 1024},
	}
	// One sweep covers all three defenses plus the shared baseline: the
	// blacklist axis only matters for the BlockHammer children (RRS and
	// the baseline normalize it away and collapse), so the product
	// {none,rrs,blockhammer} × {512,1024} expands to exactly the distinct
	// jobs the figure needs.
	run, err := s.sweepRunner(s.spec(service.MitRRS, 0), service.SweepAxes{
		Mitigations: []string{service.MitNone, service.MitRRS, service.MitBlockHammer},
		Blacklists:  []uint32{512, 1024},
		Workloads:   workloadNames(s.workloads()),
	})
	if err != nil {
		return nil, nil, err
	}
	var series []Figure11Series
	for _, d := range defenses {
		norms, err := runAll(s.workloads(), func(w trace.Workload) (float64, error) {
			norm, _, _, err := s.normalizedVia(run, s.spec(d.mit, d.blacklist, w))
			return norm, err
		})
		if err != nil {
			return nil, nil, err
		}
		sort.Float64s(norms)
		series = append(series, Figure11Series{Label: d.label, Norms: norms})
	}

	t := stats.NewTable("Rank", "RRS", "BH-512", "BH-1K")
	for i := range series[0].Norms {
		t.AddRow(i+1, series[0].Norms[i], series[1].Norms[i], series[2].Norms[i])
	}
	t.AddRow("GEOMEAN", stats.GeoMean(series[0].Norms), stats.GeoMean(series[1].Norms),
		stats.GeoMean(series[2].Norms))
	return series, t, nil
}

// DoSRow is one defense's attacker-throughput measurement.
type DoSRow struct {
	Defense    string
	AccessRate float64
	Slowdown   float64 // relative to no defense
}

// DoS reproduces the Section 8.1 denial-of-service analysis: the factor by
// which each defense throttles a hammering attacker (BlockHammer ~200x at
// full scale; RRS ~2x).
func DoS(epochs int) ([]DoSRow, *stats.Table) {
	defenses := []struct {
		label string
		mit   mitigationFactory
	}{
		{"None", noFactory},
		{"RRS", attackRRSFactory},
		{"BlockHammer", attackBlockHammerFactory},
	}
	var rows []DoSRow
	var base float64
	t := stats.NewTable("Defense", "Attacker access rate", "Attacker slowdown")
	for _, d := range defenses {
		res := runAttack(d.mit, attack.NewDoubleSided(100), epochs)
		slow := 1.0
		if d.label == "None" {
			base = res.AccessRate
		} else if res.AccessRate > 0 {
			slow = base / res.AccessRate
		}
		rows = append(rows, DoSRow{Defense: d.label, AccessRate: res.AccessRate, Slowdown: slow})
		t.AddRow(d.label, fmt.Sprintf("%.5f/cycle", res.AccessRate), fmt.Sprintf("%.1fx", slow))
	}
	return rows, t
}

// Ablation compares the CAM-reference tracker against the scalable
// CAT-backed tracker inside RRS (same workload, same swaps expected).
type AblationRow struct {
	Tracker       string
	Normalized    float64
	SwapsPerEpoch float64
}

// TrackerAblation runs the DESIGN.md tracker ablation on one workload.
func TrackerAblation(s Scale, workload string) ([]AblationRow, *stats.Table, error) {
	w, ok := trace.ByName(workload)
	if !ok {
		return nil, nil, fmt.Errorf("experiments: unknown workload %q", workload)
	}
	variants := []struct {
		label string
		mit   string
	}{{"CAT (scalable)", service.MitRRS}, {"CAM (reference)", service.MitRRSCAM}}

	var rows []AblationRow
	t := stats.NewTable("Tracker", "Normalized perf", "Swaps/epoch")
	for _, v := range variants {
		norm, _, mitRes, err := s.normalizedSpec(s.spec(v.mit, 0, w))
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, AblationRow{Tracker: v.label, Normalized: norm,
			SwapsPerEpoch: mitRes.SwapsPerEpoch})
		t.AddRow(v.label, norm, mitRes.SwapsPerEpoch)
	}
	return rows, t, nil
}
