package tracker

import (
	"testing"
	"testing/quick"
)

// TestPropertyThresholdCrossingsAlwaysCaught is the tracker-level form of
// the paper's safety argument: with capacity = EntriesFor(W, T), every
// row whose true activation count reaches k*T within a W-activation
// window has been flagged by the tracker at or before the crossing, for
// both implementations and arbitrary streams.
//
// "Flagged" needs one refinement. Observe fires on estimate multiples of
// T, but an install sets the estimate straight to spill+1 — if that lands
// on (or past) a multiple of T, the crossing is silent: the caller sees
// the row enter the tracker with an estimate already at the swap line
// rather than a discrete trigger. The property therefore counts estimate
// crossings (fired or silent-at-install) and requires, at every moment a
// row's true count reaches k*T, that at least k crossings have been
// observed for it. Spurious events are rejected too: a fire without an
// estimate crossing, or a silent crossing outside an install, fails.
func TestPropertyThresholdCrossingsAlwaysCaught(t *testing.T) {
	const threshold = 5
	const window = 600
	capacity := EntriesFor(window, threshold)
	f := func(stream []uint16) bool {
		if len(stream) > window {
			stream = stream[:window]
		}
		for name, tr := range both(capacity, threshold) {
			truth := map[uint64]int64{}
			caught := map[uint64]int64{}
			for i, v := range stream {
				// Skew toward a small pool so counts actually climb.
				row := uint64(v % 37)
				if v%3 == 0 {
					row = uint64(v % 5)
				}
				est0 := int64(0)
				tracked0 := false
				if c, ok := tr.Count(row); ok {
					est0, tracked0 = c, true
				}
				fired := tr.Observe(row)
				truth[row]++
				var crossings int64
				if c, ok := tr.Count(row); ok {
					crossings = c/threshold - est0/threshold
				}
				if fired && crossings == 0 {
					t.Logf("%s: obs %d row %d fired without an estimate crossing", name, i, row)
					return false
				}
				if !fired && crossings > 0 && tracked0 {
					t.Logf("%s: obs %d row %d crossed silently on a hit", name, i, row)
					return false
				}
				caught[row] += crossings
				if truth[row]%threshold == 0 && caught[row] < truth[row]/threshold {
					t.Logf("%s: obs %d row %d reached %d true ACTs with %d crossing(s) caught",
						name, i, row, truth[row], caught[row])
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
