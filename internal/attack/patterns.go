package attack

import (
	"repro/internal/prince"
)

// Pattern produces the sequence of rows an attacker activates within one
// bank. Patterns alternate between at least two rows so every access
// causes a row-buffer conflict and hence an activation.
type Pattern interface {
	// NextRow returns the next row to access.
	NextRow() int
	// Name identifies the pattern in reports.
	Name() string
}

// SingleSided is the classic single-aggressor pattern: the aggressor
// alternates with a distant dummy row to defeat the row buffer.
type SingleSided struct {
	Aggressor int
	Dummy     int
	flip      bool
}

// NewSingleSided hammers aggressor, using a dummy row far away to force
// activations.
func NewSingleSided(aggressor, rowsPerBank int) *SingleSided {
	dummy := aggressor + rowsPerBank/2
	if dummy >= rowsPerBank {
		dummy -= rowsPerBank
	}
	return &SingleSided{Aggressor: aggressor, Dummy: dummy}
}

// NextRow implements Pattern.
func (p *SingleSided) NextRow() int {
	p.flip = !p.flip
	if p.flip {
		return p.Aggressor
	}
	return p.Dummy
}

// Name implements Pattern.
func (p *SingleSided) Name() string { return "single-sided" }

// DoubleSided hammers the two rows sandwiching a victim: V-1 and V+1.
type DoubleSided struct {
	Victim int
	flip   bool
}

// NewDoubleSided targets victim with aggressors at victim±1.
func NewDoubleSided(victim int) *DoubleSided { return &DoubleSided{Victim: victim} }

// NextRow implements Pattern.
func (p *DoubleSided) NextRow() int {
	p.flip = !p.flip
	if p.flip {
		return p.Victim - 1
	}
	return p.Victim + 1
}

// Name implements Pattern.
func (p *DoubleSided) Name() string { return "double-sided" }

// HalfDouble is Google's distance-two attack: the near-aggressors at
// victim±2 are hammered heavily; the victim-focused mitigation's refreshes
// of victim±1 (the near-aggressors' immediate neighbours) become the far
// aggressor's activations, flipping the victim at distance two.
type HalfDouble struct {
	Victim int
	flip   bool
}

// NewHalfDouble targets victim with near-aggressors at victim±2.
func NewHalfDouble(victim int) *HalfDouble { return &HalfDouble{Victim: victim} }

// NextRow implements Pattern.
func (p *HalfDouble) NextRow() int {
	p.flip = !p.flip
	if p.flip {
		return p.Victim - 2
	}
	return p.Victim + 2
}

// Name implements Pattern.
func (p *HalfDouble) Name() string { return "half-double" }

// ManySided rotates across n aggressor rows (TRRespass-style), defeating
// trackers with too few entries.
type ManySided struct {
	Rows []int
	i    int
}

// NewManySided hammers n consecutive odd rows starting at base,
// sandwiching the even rows between them.
func NewManySided(base, n int) *ManySided {
	rows := make([]int, n)
	for i := range rows {
		rows[i] = base + 2*i
	}
	return &ManySided{Rows: rows}
}

// NextRow implements Pattern.
func (p *ManySided) NextRow() int {
	r := p.Rows[p.i]
	p.i = (p.i + 1) % len(p.Rows)
	return r
}

// Name implements Pattern.
func (p *ManySided) Name() string { return "many-sided" }

// RandomChase is the optimal strategy against RRS (Figure 7): activate a
// uniformly random row exactly T times (so it swaps), then move to another
// random row, hoping physical locations accumulate multiple swaps' worth
// of activations (the buckets-and-balls analysis of Section 5).
type RandomChase struct {
	// T is the number of activations per chosen row (T_RRS).
	T int
	// RowsPerBank bounds the random row choice.
	RowsPerBank int

	rng     *prince.CTR
	current int
	dummy   int
	left    int
	flip    bool
}

// NewRandomChase creates the chase pattern with per-row budget t.
func NewRandomChase(t, rowsPerBank int, seed uint64) *RandomChase {
	return &RandomChase{T: t, RowsPerBank: rowsPerBank, rng: prince.Seeded(seed)}
}

// NextRow implements Pattern. Each chosen row is activated T times,
// interleaved with a dummy row to force row-buffer conflicts; dummy
// activations do not count against the budget but do activate — the
// attacker sacrifices half its activation rate, exactly as a real attack
// alternating rows would.
func (p *RandomChase) NextRow() int {
	p.flip = !p.flip
	if !p.flip {
		return p.dummy
	}
	if p.left == 0 {
		p.current = p.rng.Intn(p.RowsPerBank)
		p.dummy = p.current + p.RowsPerBank/2
		if p.dummy >= p.RowsPerBank {
			p.dummy -= p.RowsPerBank
		}
		p.left = p.T
	}
	p.left--
	return p.current
}

// Name implements Pattern.
func (p *RandomChase) Name() string { return "random-chase" }

// Blacksmith is a frequency-fuzzed many-sided pattern in the spirit of the
// Blacksmith fuzzer: each aggressor is hammered with its own frequency and
// phase rather than uniformly, which defeats trackers that key on uniform
// access counts. Against Misra-Gries tracking (which bounds *counts*, not
// patterns) and RRS it gains nothing — a property the tests pin down.
type Blacksmith struct {
	rows    []int
	periods []int
	tick    int
}

// NewBlacksmith builds a fuzzed pattern over n aggressors starting at
// base, with per-aggressor periods derived from seed.
func NewBlacksmith(base, n int, seed uint64) *Blacksmith {
	rng := prince.Seeded(seed)
	b := &Blacksmith{}
	for i := 0; i < n; i++ {
		b.rows = append(b.rows, base+2*i)
		b.periods = append(b.periods, 1+rng.Intn(4)) // hammer every 1-4 ticks
	}
	return b
}

// NextRow implements Pattern: the pattern sweeps the aggressor list; row i
// participates in one of every periods[i] sweeps, giving each aggressor
// its own hammering frequency.
func (p *Blacksmith) NextRow() int {
	for {
		i := p.tick % len(p.rows)
		sweep := p.tick / len(p.rows)
		p.tick++
		if sweep%p.periods[i] == 0 {
			return p.rows[i]
		}
	}
}

// Name implements Pattern.
func (p *Blacksmith) Name() string { return "blacksmith" }
