package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
)

// latencyBuckets are the upper bounds (seconds) of the job run-latency
// histogram; simulation jobs span milliseconds (cache-warm tiny scales)
// to minutes (full Table 3 sweeps). The terminal +Inf bucket is
// implicit.
var latencyBuckets = []float64{
	0.005, 0.025, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120, 300, 600,
}

// Metrics is the service's in-process registry: monotonic counters and a
// run-latency histogram owned by the registry, plus gauges sampled from
// the manager at scrape time. It renders itself as Prometheus text
// exposition or as a JSON object; both views are built from one snapshot
// so they never disagree mid-scrape.
type Metrics struct {
	mu sync.Mutex

	counters map[string]int64

	// Histogram of job run latency (seconds), cumulative per Prometheus
	// convention at render time, stored per-bucket here.
	bucketCounts []int64
	latencySum   float64
	latencyCount int64

	// gauges are sampled at scrape time (queue depth, busy workers,
	// jobs by state) so the registry never holds manager locks.
	gauges map[string]func() float64

	gaugeHelp   map[string]string
	counterHelp map[string]string
}

// NewMetrics returns an empty registry.
func NewMetrics() *Metrics {
	return &Metrics{
		counters:     make(map[string]int64),
		bucketCounts: make([]int64, len(latencyBuckets)+1),
		gauges:       make(map[string]func() float64),
		gaugeHelp:    make(map[string]string),
		counterHelp:  make(map[string]string),
	}
}

// Counter registers help text for (and zero-initializes) a counter.
func (m *Metrics) Counter(name, help string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counterHelp[name] = help
	if _, ok := m.counters[name]; !ok {
		m.counters[name] = 0
	}
}

// Inc adds delta to a counter (auto-registering an unnamed one).
func (m *Metrics) Inc(name string, delta int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.counters[name] += delta
}

// Gauge registers a sampled gauge; fn runs at scrape time.
func (m *Metrics) Gauge(name, help string, fn func() float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.gauges[name] = fn
	m.gaugeHelp[name] = help
}

// ObserveLatency records one job's run duration in seconds. Non-finite
// samples are dropped and negative ones clamp to zero: monotonic-clock
// edge cases (VM suspend/resume, clock steps on hosts without monotonic
// reads) can hand the caller a negative or NaN duration, and a single
// NaN would poison latencySum — and every scrape after it — forever.
func (m *Metrics) ObserveLatency(seconds float64) {
	if math.IsNaN(seconds) || math.IsInf(seconds, 0) {
		return
	}
	if seconds < 0 {
		seconds = 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	i := sort.SearchFloat64s(latencyBuckets, seconds)
	m.bucketCounts[i]++
	m.latencySum += seconds
	m.latencyCount++
}

// snapshot captures a consistent view for rendering.
type metricsSnapshot struct {
	counters     map[string]int64
	gauges       map[string]float64
	counterHelp  map[string]string
	gaugeHelp    map[string]string
	bucketCounts []int64
	latencySum   float64
	latencyCount int64
}

func (m *Metrics) snapshot() metricsSnapshot {
	m.mu.Lock()
	s := metricsSnapshot{
		counters:     make(map[string]int64, len(m.counters)),
		counterHelp:  make(map[string]string, len(m.counterHelp)),
		gaugeHelp:    make(map[string]string, len(m.gaugeHelp)),
		bucketCounts: append([]int64(nil), m.bucketCounts...),
		latencySum:   m.latencySum,
		latencyCount: m.latencyCount,
	}
	for k, v := range m.counters {
		s.counters[k] = v
	}
	for k, v := range m.counterHelp {
		s.counterHelp[k] = v
	}
	for k, v := range m.gaugeHelp {
		s.gaugeHelp[k] = v
	}
	fns := make(map[string]func() float64, len(m.gauges))
	for k, fn := range m.gauges {
		fns[k] = fn
	}
	m.mu.Unlock()

	// Sample gauges outside the registry lock: they reach into the
	// manager, which takes its own locks.
	s.gauges = make(map[string]float64, len(fns))
	for k, fn := range fns {
		s.gauges[k] = fn()
	}
	return s
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4), the format `GET /metrics` serves by default.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	s := m.snapshot()
	for _, name := range sortedKeys(s.counters) {
		if help := s.counterHelp[name]; help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		}
		fmt.Fprintf(w, "# TYPE %s counter\n", name)
		fmt.Fprintf(w, "%s %d\n", name, s.counters[name])
	}
	for _, name := range sortedKeys(s.gauges) {
		if help := s.gaugeHelp[name]; help != "" {
			fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		}
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		fmt.Fprintf(w, "%s %s\n", name, formatFloat(s.gauges[name]))
	}

	const hist = "rrs_job_run_seconds"
	fmt.Fprintf(w, "# HELP %s Wall-clock latency of simulation runs (cache hits excluded).\n", hist)
	fmt.Fprintf(w, "# TYPE %s histogram\n", hist)
	var cum int64
	for i, le := range latencyBuckets {
		cum += s.bucketCounts[i]
		fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", hist, formatFloat(le), cum)
	}
	cum += s.bucketCounts[len(latencyBuckets)]
	fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", hist, cum)
	fmt.Fprintf(w, "%s_sum %s\n", hist, formatFloat(s.latencySum))
	_, err := fmt.Fprintf(w, "%s_count %d\n", hist, s.latencyCount)
	return err
}

func formatFloat(f float64) string {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fmt.Sprintf("%d", int64(f))
	}
	return fmt.Sprintf("%g", f)
}

// JSONView is the `GET /metrics?format=json` payload.
type JSONView struct {
	Counters map[string]int64   `json:"counters"`
	Gauges   map[string]float64 `json:"gauges"`
	Latency  LatencyView        `json:"job_run_seconds"`
}

// LatencyView is the histogram portion of the JSON metrics.
type LatencyView struct {
	Buckets []BucketView `json:"buckets"`
	Sum     float64      `json:"sum"`
	Count   int64        `json:"count"`
}

// BucketView is one non-cumulative histogram bucket.
type BucketView struct {
	LE    float64 `json:"le"` // +Inf encoded as 0 with Last=true
	Last  bool    `json:"last,omitempty"`
	Count int64   `json:"count"`
}

// JSON returns the snapshot in the JSON shape.
func (m *Metrics) JSON() JSONView {
	s := m.snapshot()
	v := JSONView{
		Counters: s.counters,
		Gauges:   s.gauges,
		Latency: LatencyView{
			Sum:   s.latencySum,
			Count: s.latencyCount,
		},
	}
	for i, le := range latencyBuckets {
		v.Latency.Buckets = append(v.Latency.Buckets,
			BucketView{LE: le, Count: s.bucketCounts[i]})
	}
	v.Latency.Buckets = append(v.Latency.Buckets,
		BucketView{Last: true, Count: s.bucketCounts[len(latencyBuckets)]})
	return v
}
