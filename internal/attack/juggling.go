package attack

import (
	"repro/internal/dram"
	"repro/internal/memctrl"
)

// Juggling is the white-box attack on RRS from the SRS paper (arXiv
// 2212.12613): instead of hammering two *logical* rows, the attacker
// pins two *physical* slots — the neighbours of a physical victim slot —
// and re-derives which logical row currently occupies each slot before
// every access. RRS tracks logical rows, so each swap installs a fresh,
// untracked occupant into the hot slot; the attacker simply switches to
// the new occupant ("juggling") and the physical victim's disturbance
// grows without bound inside one epoch. A defense that keys its tracking
// on physical slots (SRS) sees through the churn and bounds the victim
// at roughly two swap thresholds.
//
// The occupant oracle models the paper's white-box attacker, who knows
// the randomized mapping (via timing side channels in the original
// analysis). Use OccupantOracle to build one from a controller.
type Juggling struct {
	// Victim is the physical slot whose neighbours are hammered.
	Victim int
	// occupant returns the logical row currently mapped onto a physical
	// slot.
	occupant func(physRow int) int
	flip     bool
}

// NewJuggling attacks the physical slot victim through the occupants of
// victim±1.
func NewJuggling(victim int, occupant func(physRow int) int) *Juggling {
	return &Juggling{Victim: victim, occupant: occupant}
}

// NextRow implements Pattern: alternate between the current occupants of
// the two physical slots adjacent to the victim. The occupants are
// re-derived on every access, so a swap is followed immediately.
func (p *Juggling) NextRow() int {
	p.flip = !p.flip
	if p.flip {
		return p.occupant(p.Victim - 1)
	}
	return p.occupant(p.Victim + 1)
}

// Name implements Pattern.
func (p *Juggling) Name() string { return "juggling" }

// OccupantFinder is implemented by mitigations that can report which
// logical row currently occupies a physical slot (SRS and Rubix expose
// their inverse mapping this way).
type OccupantFinder interface {
	Occupant(id dram.BankID, physRow int) int
}

// OccupantOracle builds the juggling attacker's white-box oracle over the
// controller's mitigation for one bank. Mitigations implementing
// OccupantFinder answer directly; otherwise Remap is used as the inverse
// — exact for RRS (its remapping is an involution: swapped pairs map to
// each other) and for any identity-mapping defense.
func OccupantOracle(ctl *memctrl.Controller, bank dram.BankID) func(int) int {
	if f, ok := ctl.Mitigation().(OccupantFinder); ok {
		return func(phys int) int { return f.Occupant(bank, phys) }
	}
	mit := ctl.Mitigation()
	return func(phys int) int { return mit.Remap(bank, phys) }
}
