// Command rrs-serve exposes the simulation engine as an HTTP job
// service: submitted specs are queued FIFO, executed by a worker pool,
// answered from a content-addressed result cache on re-submission, and
// observable through per-job status and a Prometheus/JSON metrics
// endpoint.
//
// Usage:
//
//	rrs-serve -addr :8080 -workers 8 -queue-depth 128 -cache-entries 512 -journal jobs.journal
//
// With -journal, accepted specs and terminal states are written to an
// append-only JSONL write-ahead log. On startup the journal is replayed:
// finished results repopulate the cache, and jobs that never reached a
// terminal state are re-enqueued under their original ids — a kill -9
// mid-sweep loses no accepted work. Transiently failed runs are retried
// automatically up to -job-retries times, and a panic inside a
// simulation marks only that job failed (rrs_worker_panics_total); the
// process keeps serving.
//
// A whole parameter sweep is one request: POST /v1/sweeps takes a base
// spec plus axes (mitigations, blacklist sizes, Row Hammer thresholds,
// scales, seeds, workloads) and the manager expands the cartesian
// product into child jobs deduplicated by content hash. GET
// /v1/sweeps/{id} reports aggregated progress and per-child states;
// GET /v1/sweeps/{id}/results returns every child result keyed by
// child hash once the sweep is terminal. The parent is journaled too,
// so a kill -9 mid-sweep re-expands and resumes from the completed
// children on restart, and resubmitting a finished sweep is answered
// almost entirely from the result cache — the rrs_sweep_* metrics
// count both. rrs-experiments -server submits each figure's grid this
// way. See DESIGN.md §15.
//
// Fleet mode joins several rrs-serve processes into one logical
// service. A fleet can be seeded with a static roster, every node
// started with the same list and its own id:
//
//	rrs-serve -addr :8080 -node n1 -fleet 'n1=http://h1:8080,n2=http://h2:8080,n3=http://h3:8080' -journal n1.journal
//
// or grown dynamically: a new node names only itself and one or more
// live peers to gossip with, and the fleet learns it without any
// survivor restarting —
//
//	rrs-serve -addr :8080 -node n4 -advertise http://h4:8080 -join http://h1:8080 -journal n4.journal
//
// Any node then accepts any submission: ownership is decided by
// rendezvous hashing over the spec's content hash, non-owners forward
// to the owner, job polls are proxied to the job's home node, health
// probes (carrying the gossiped membership table) shrink the ring
// around dead peers, idle nodes steal queued work from backed-up ones,
// every node answers from the whole fleet's result caches, and each
// completed result is replicated to its ring successor so a single
// node death never costs a re-simulation (anti-entropy repair keeps
// that invariant through churn). See internal/fleet, DESIGN.md §13–14.
//
// -admission-watermark N sheds new submissions with 429 + Retry-After
// once the local backlog reaches N (0 disables), keeping latency
// bounded and steering a fleet's traffic toward idle peers.
//
// With -debug-addr, a second listener serves net/http/pprof profiles
// and expvar counters (for operators only — never expose it publicly):
//
//	go tool pprof http://localhost:6060/debug/pprof/profile?seconds=10
//	go tool pprof http://localhost:6060/debug/pprof/heap
//	curl -s localhost:6060/debug/vars
//
// Walkthrough:
//
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/jobs -d '{"workloads":["bzip2"],"mitigation":"rrs","scale":16,"epochs":2}'
//	curl -s localhost:8080/v1/jobs/job-000001
//	curl -s localhost:8080/v1/jobs/job-000001/result
//	curl -s -X POST localhost:8080/v1/sweeps -d '{"base":{"workloads":["bzip2"],"scale":16,"epochs":2},"axes":{"mitigations":["none","rrs"],"seeds":[1,2,3]}}'
//	curl -s localhost:8080/v1/sweeps/sweep-000001
//	curl -s localhost:8080/v1/sweeps/sweep-000001/results
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM starts a graceful drain: /readyz flips to 503, intake
// stops, and accepted jobs get -drain-timeout to finish. Jobs that do
// not make it are requeued through the journal (their terminal records
// are withheld, so a -journal restart replays them as pending) — a
// drain completes accepted work or hands it to the next process, never
// drops it.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/fleet"
	"repro/internal/service"
)

// main delegates to run so every exit path unwinds through the defers —
// in particular the journal close/fsync. The previous shape called
// os.Exit (via fatalf) directly from the middle of main, so an early
// ListenAndServe failure skipped `defer journal.Close()` and left the
// WAL without its final fsync.
func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "rrs-serve: %v\n", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		debugAddr    = flag.String("debug-addr", "", "listen address for the pprof/expvar debug server (empty disables; keep it private)")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		queueDepth   = flag.Int("queue-depth", 64, "max queued jobs before 429s")
		cacheEntries = flag.Int("cache-entries", 256, "result cache capacity (-1 disables)")
		jobTimeout   = flag.Duration("job-timeout", 0, "default per-job run limit (0 = none)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget for accepted jobs; leftovers journal-requeue")
		jobRetries   = flag.Int("job-retries", 2, "automatic retries for transiently failed runs (-1 disables)")
		journalPath  = flag.String("journal", "", "durable job journal path (JSONL WAL; empty disables durability)")
		paranoid     = flag.Bool("paranoid", false, "force every job to run with the self-verification layer (stats unchanged; results gain an invariant summary)")
		simWorkers   = flag.Int("sim-workers", 0, "default per-simulation goroutine count for specs that leave workers unset (0 = sequential engine; positive enables the bank-sharded parallel mode)")

		fleetRoster   = flag.String("fleet", "", "fleet seed roster as 'id=url,id=url,...' (empty = single-node mode unless -join)")
		nodeID        = flag.String("node", "", "this node's id within the fleet (required with -fleet or -join)")
		joinSeeds     = flag.String("join", "", "comma-separated peer base URLs to gossip-join a running fleet (requires -node and -advertise)")
		advertise     = flag.String("advertise", "", "base URL peers reach this node at (required with -join)")
		watermark     = flag.Int("admission-watermark", 0, "shed submissions with 429 once the backlog reaches this depth (0 disables)")
		probeInterval = flag.Duration("probe-interval", 500*time.Millisecond, "fleet peer health-probe cadence")
		stealInterval = flag.Duration("steal-interval", 250*time.Millisecond, "idle-node work-stealing cadence (negative disables)")
		leaseTimeout  = flag.Duration("lease-timeout", 30*time.Second, "how long a stolen job may stay out before it requeues locally")
		replicaQueue  = flag.Int("replica-queue", 0, "bounded result-replication queue depth (0 = default 128; negative disables replication)")
		repairEvery   = flag.Duration("repair-interval", 0, "anti-entropy replica-repair cadence (0 = default 30s; negative disables)")
	)
	flag.Parse()

	var journal *service.Journal
	var replayed *service.Replayed
	if *journalPath != "" {
		var err error
		journal, replayed, err = service.OpenJournal(*journalPath)
		if err != nil {
			return err
		}
		defer journal.Close()
	}

	svcOpts := service.Options{
		Workers:            *workers,
		QueueDepth:         *queueDepth,
		CacheEntries:       *cacheEntries,
		DefaultTimeout:     *jobTimeout,
		JobRetries:         *jobRetries,
		Journal:            journal,
		ForceParanoid:      *paranoid,
		DefaultSimWorkers:  *simWorkers,
		AdmissionWatermark: *watermark,
	}

	// Build either a lone manager or a fleet node wrapping one; both
	// paths expose the same mgr/handler pair and the same drain.
	var (
		mgr        *service.Manager
		handler    http.Handler
		node       *fleet.Node
		rosterSize int
	)
	if *fleetRoster != "" || *joinSeeds != "" {
		if *nodeID == "" {
			return errors.New("fleet mode requires -node (this node's id)")
		}
		var peers []fleet.Peer
		var self fleet.Peer
		if *fleetRoster != "" {
			var err error
			peers, err = parseRoster(*fleetRoster)
			if err != nil {
				return err
			}
			for _, p := range peers {
				if p.ID == *nodeID {
					self = p
				}
			}
			if self.ID == "" {
				return fmt.Errorf("-node %q is not in the -fleet roster", *nodeID)
			}
		} else {
			// -join only: the node knows itself and learns the rest by
			// gossiping with the seeds once it is listening.
			if *advertise == "" {
				return errors.New("-join requires -advertise (the base URL peers reach this node at)")
			}
			self = fleet.Peer{ID: *nodeID, URL: *advertise}
			peers = []fleet.Peer{self}
		}
		rosterSize = len(peers)
		var err error
		node, err = fleet.New(fleet.Options{
			Self:             self,
			Peers:            peers,
			Service:          svcOpts,
			ProbeInterval:    *probeInterval,
			StealInterval:    *stealInterval,
			LeaseTimeout:     *leaseTimeout,
			ReplicationQueue: *replicaQueue,
			RepairInterval:   *repairEvery,
		})
		if err != nil {
			return err
		}
		mgr = node.Manager()
		handler = node.Handler()
	} else {
		mgr = service.NewManager(svcOpts)
		handler = service.Handler(mgr)
	}

	if replayed != nil {
		if err := mgr.Restore(replayed); err != nil {
			fmt.Fprintf(os.Stderr, "rrs-serve: journal replay: %v\n", err)
		}
		fmt.Fprintf(os.Stderr,
			"rrs-serve: journal %s replayed: %d jobs (%d re-enqueued, %d cached results, %d corrupt lines dropped)\n",
			*journalPath, len(replayed.Jobs), replayed.Pending, replayed.Results, replayed.Dropped)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(),
		os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "rrs-serve: listening on %s\n", *addr)
	if node != nil {
		node.Start()
		if *joinSeeds != "" {
			seeds := splitSeeds(*joinSeeds)
			joinCtx, cancelJoin := context.WithTimeout(ctx, 30*time.Second)
			err := node.Join(joinCtx, seeds)
			cancelJoin()
			if err != nil {
				return fmt.Errorf("fleet join: %w", err)
			}
			fmt.Fprintf(os.Stderr, "rrs-serve: fleet node %s joined via %d seed(s); now sees %d member(s)\n",
				*nodeID, len(seeds), len(node.Members()))
		} else {
			fmt.Fprintf(os.Stderr, "rrs-serve: fleet node %s started on a seed roster of %d\n",
				*nodeID, rosterSize)
		}
	}

	var debugSrv *http.Server
	if *debugAddr != "" {
		debugSrv = &http.Server{
			Addr:              *debugAddr,
			Handler:           debugMux(),
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintf(os.Stderr, "rrs-serve: debug server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "rrs-serve: pprof/expvar on %s/debug\n", *debugAddr)
	}

	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "rrs-serve: draining: intake stopped, finishing accepted jobs...")
	case err := <-errc:
		return err
	}

	// Drain before tearing the listener down: /readyz must answer 503
	// (so load balancers and fleet peers stop routing here) while
	// accepted jobs finish and clients poll their last results. Jobs
	// the deadline cuts short keep their journal records pending and
	// replay on the next start — the drain bug this ordering replaces
	// cancelled them with terminal records, silently losing accepted
	// work on every SIGTERM.
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	var drainErr error
	if node != nil {
		drainErr = node.Drain(drainCtx)
	} else {
		drainErr = mgr.Drain(drainCtx)
	}
	if drainErr != nil {
		fmt.Fprintf(os.Stderr,
			"rrs-serve: drain deadline hit; unfinished jobs will replay from the journal: %v\n", drainErr)
	}
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "rrs-serve: http shutdown: %v\n", err)
	}
	if debugSrv != nil {
		if err := debugSrv.Shutdown(drainCtx); err != nil {
			fmt.Fprintf(os.Stderr, "rrs-serve: debug shutdown: %v\n", err)
		}
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// splitSeeds turns "http://h1:8080,http://h2:8080" into a URL list.
func splitSeeds(s string) []string {
	var out []string
	for _, u := range strings.Split(s, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	return out
}

// parseRoster turns "n1=http://h1:8080,n2=http://h2:8080" into peers.
func parseRoster(s string) ([]fleet.Peer, error) {
	var peers []fleet.Peer
	for _, entry := range strings.Split(s, ",") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		id, url, found := strings.Cut(entry, "=")
		if !found || id == "" || url == "" {
			return nil, fmt.Errorf("-fleet entry %q is not id=url", entry)
		}
		peers = append(peers, fleet.Peer{ID: id, URL: url})
	}
	if len(peers) == 0 {
		return nil, errors.New("-fleet roster is empty")
	}
	return peers, nil
}

// debugMux serves the standard Go debug surfaces on a dedicated mux —
// registered explicitly rather than via the net/http/pprof and expvar
// side effects on DefaultServeMux, so the job API listener never
// exposes them.
func debugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
