package service

import (
	"context"
	"testing"

	"repro/internal/obs"
	"repro/internal/sim"
)

// fakeTimeline builds the histogram-only timeline a production run hands
// back: known occupancy/stall aggregates and two epoch samples.
func fakeTimeline() *obs.Timeline {
	rec := obs.NewRecorder(obs.Config{RingSize: -1})
	for _, v := range []int64{10, 10, 10} {
		rec.Observe(obs.HistAccess, v)
	}
	rec.Observe(obs.HistStall, 7)
	rec.Observe(obs.HistStall, 5)
	rec.Observe(obs.HistSwapBlock, 100)
	rec.Observe(obs.HistRITOcc, 4)
	rec.Observe(obs.HistRITOcc, 8)
	rec.Observe(obs.HistHRTOcc, 10)
	rec.Sample(obs.EpochSample{Epoch: 0, Swaps: 5})
	rec.Sample(obs.EpochSample{Epoch: 1, Swaps: 7})
	return rec.Timeline()
}

// TestFoldTimelineIntoMetrics checks that a finished run's timeline is
// folded into the registry — counters accumulate, last-run gauges are
// replaced — and that the timeline is stripped from the stored result.
func TestFoldTimelineIntoMetrics(t *testing.T) {
	m := stubManager(t, Options{Workers: 1},
		func(_ context.Context, spec Spec, _ func(int64, int64)) (sim.Result, error) {
			res := sim.Result{IPC: 1}
			if spec.Seed == 1 {
				res.Timeline = fakeTimeline()
			}
			return res, nil // seed 2 returns no timeline (fold must be nil-safe)
		})

	j, err := m.Submit(uniqueSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if v := waitDone(t, j); v.State != StateDone {
		t.Fatalf("state = %s (%s)", v.State, v.Error)
	}

	res, ok := j.Result()
	if !ok {
		t.Fatal("no result")
	}
	if res.Timeline != nil {
		t.Error("timeline leaked into the stored result; it must be folded and dropped")
	}

	view := m.Metrics().JSON()
	for name, want := range map[string]int64{
		"rrs_sim_epochs_total":            2,
		"rrs_sim_swaps_total":             12,
		"rrs_sim_accesses_total":          3,
		"rrs_sim_stall_cycles_total":      12,
		"rrs_sim_swap_block_cycles_total": 100,
	} {
		if got := view.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	for name, want := range map[string]float64{
		"rrs_last_run_rit_occupancy_mean": 6,
		"rrs_last_run_rit_occupancy_peak": 8,
		"rrs_last_run_hrt_occupancy_mean": 10,
		"rrs_last_run_hrt_occupancy_peak": 10,
		"rrs_last_run_stall_cycles_mean":  6,
	} {
		if got := view.Gauges[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}

	// A run without a timeline (the chaos-test RunFunc shape) leaves the
	// folded aggregates untouched.
	j2, err := m.Submit(uniqueSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, j2)
	after := m.Metrics().JSON()
	if got := after.Counters["rrs_sim_epochs_total"]; got != 2 {
		t.Errorf("nil timeline changed rrs_sim_epochs_total to %d", got)
	}
	if got := after.Gauges["rrs_last_run_rit_occupancy_peak"]; got != 8 {
		t.Errorf("nil timeline changed last-run gauge to %v", got)
	}
}

// TestJobViewPhaseAndEpoch checks the derived progress fields: phase
// strings across the lifecycle (queued → simulating → done, plus the
// cache-hit "cached"), and epoch counts mapped from the cycle-based
// progress fraction.
func TestJobViewPhaseAndEpoch(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	m := stubManager(t, Options{Workers: 1},
		func(_ context.Context, _ Spec, progress func(int64, int64)) (sim.Result, error) {
			progress(1, 2) // half the simulated cycles done
			close(started)
			<-release
			return sim.Result{IPC: 1}, nil
		})

	spec := uniqueSpec(1)
	spec.Epochs = 4
	j, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	<-started

	v := j.Snapshot()
	if v.Phase != "simulating" {
		t.Errorf("running phase = %q, want simulating", v.Phase)
	}
	if v.TotalEpochs != 4 || v.Epoch != 2 {
		t.Errorf("mid-run epochs = %d/%d, want 2/4", v.Epoch, v.TotalEpochs)
	}

	// A second distinct spec sits behind the blocked worker: queued.
	spec2 := uniqueSpec(2)
	spec2.Epochs = 4
	j2, err := m.Submit(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if v := j2.Snapshot(); v.Phase != "queued" || v.Epoch != 0 {
		t.Errorf("queued job phase/epoch = %q/%d, want queued/0", v.Phase, v.Epoch)
	}

	close(release)
	if v := waitDone(t, j); v.Phase != "done" || v.Epoch != 4 {
		t.Errorf("done job phase/epoch = %q/%d, want done/4", v.Phase, v.Epoch)
	}
	waitDone(t, j2)

	// Resubmitting the finished spec answers from the cache.
	j3, err := m.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if v := waitDone(t, j3); !v.CacheHit || v.Phase != "cached" {
		t.Errorf("cache-hit job = {hit:%v phase:%q}, want {true cached}", v.CacheHit, v.Phase)
	}
}
