package fleet

import (
	"fmt"
	"testing"
)

func testPeers(n int) []Peer {
	out := make([]Peer, n)
	for i := range out {
		out[i] = Peer{ID: fmt.Sprintf("n%d", i+1), URL: fmt.Sprintf("http://n%d.invalid", i+1)}
	}
	return out
}

func TestRankDeterministicAcrossInputOrder(t *testing.T) {
	peers := testPeers(5)
	reversed := make([]Peer, len(peers))
	for i, p := range peers {
		reversed[len(peers)-1-i] = p
	}
	for seed := 0; seed < 50; seed++ {
		hash := fmt.Sprintf("hash-%d", seed)
		a, b := rank(hash, peers), rank(hash, reversed)
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatalf("hash %q: rank depends on roster order: %v vs %v", hash, a, b)
			}
		}
	}
}

func TestRankRemovalOnlyPromotes(t *testing.T) {
	// The rendezvous property the failover walk relies on: deleting the
	// owner from the peer set must leave the relative order of the
	// survivors untouched, so the forwarder's next candidate is exactly
	// what the shrunken ring would elect.
	peers := testPeers(5)
	for seed := 0; seed < 100; seed++ {
		hash := fmt.Sprintf("hash-%d", seed)
		full := rank(hash, peers)
		var survivors []Peer
		for _, p := range peers {
			if p.ID != full[0].ID {
				survivors = append(survivors, p)
			}
		}
		shrunk := rank(hash, survivors)
		for i := range shrunk {
			if shrunk[i].ID != full[i+1].ID {
				t.Fatalf("hash %q: shrunken ring %v is not the full ring's tail %v",
					hash, shrunk, full[1:])
			}
		}
	}
}

func TestRankSpreadsOwnership(t *testing.T) {
	peers := testPeers(3)
	owned := map[string]int{}
	const keys = 3000
	for seed := 0; seed < keys; seed++ {
		owned[rank(fmt.Sprintf("hash-%d", seed), peers)[0].ID]++
	}
	for _, p := range peers {
		// Perfect balance is keys/3; FNV-1a should land every peer well
		// within ±50% of it.
		if got := owned[p.ID]; got < keys/6 || got > keys/2 {
			t.Fatalf("peer %s owns %d of %d keys — distribution %v is skewed",
				p.ID, got, keys, owned)
		}
	}
}

func TestScoreSeparatorPreventsConcatenationCollision(t *testing.T) {
	if score("ab", "c") == score("a", "bc") {
		t.Fatal("score(ab,c) == score(a,bc): separator is not mixing")
	}
}
