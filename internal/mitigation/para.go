package mitigation

import (
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/prince"
)

// PARA is the stateless probabilistic victim-refresh mitigation: on every
// activation, with probability p, both immediate neighbours of the
// activated row are refreshed.
type PARA struct {
	sys  *dram.System
	cfg  config.Config
	p    float64
	rng  *prince.CTR
	stat VictimStats
}

// DefaultPARAProbability returns a p that keeps the expected unmitigated
// activation run below the Row Hammer threshold with large margin: the
// probability that a row sustains T_RH activations without any mitigation
// is (1-p)^T_RH; p = 12/T_RH drives that below e^-12 per epoch.
func DefaultPARAProbability(trh int) float64 {
	if trh <= 0 {
		return 1
	}
	p := 12.0 / float64(trh)
	if p > 1 {
		p = 1
	}
	return p
}

// NewPARA creates a PARA mitigation with refresh probability p per
// activation.
func NewPARA(sys *dram.System, p float64, seed uint64) *PARA {
	return &PARA{sys: sys, cfg: sys.Config(), p: p, rng: prince.Seeded(seed)}
}

// Stats returns mitigation counters.
func (m *PARA) Stats() VictimStats { return m.stat }

// Remap implements memctrl.Mitigation (identity: no indirection).
func (m *PARA) Remap(_ dram.BankID, row int) int { return row }

// ActivateDelay implements memctrl.Mitigation.
func (m *PARA) ActivateDelay(dram.BankID, int, int64) int64 { return 0 }

// AccessPenalty implements memctrl.Mitigation.
func (m *PARA) AccessPenalty() int64 { return 0 }

// OnEpoch implements memctrl.Mitigation (PARA is stateless).
func (m *PARA) OnEpoch(int64) {}

// OnActivate implements memctrl.Mitigation.
func (m *PARA) OnActivate(id dram.BankID, _, physRow int, now int64) memctrl.ActResult {
	if m.rng.Float64() >= m.p {
		return memctrl.ActResult{}
	}
	m.stat.Mitigations++
	n := refreshNeighbors(m.sys, id, physRow, now, -1, +1)
	m.stat.Refreshes += int64(n)
	return memctrl.ActResult{BankBlock: victimRefreshCost(m.cfg, n)}
}
