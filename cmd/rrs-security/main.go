// Command rrs-security evaluates the analytical security model of RRS:
// the expected time to a successful Row Hammer attack as a function of the
// swap threshold, duty cycles, and a Monte Carlo cross-check of the
// buckets-and-balls formula.
//
// Usage:
//
//	rrs-security
//	rrs-security -trh 4800 -threshold 800
//	rrs-security -sweep
package main

import (
	"flag"
	"fmt"

	"repro/internal/security"
	"repro/internal/stats"
)

func main() {
	var (
		trh       = flag.Int("trh", 4800, "Row Hammer threshold")
		threshold = flag.Int("threshold", 800, "RRS swap threshold T")
		sweep     = flag.Bool("sweep", false, "sweep thresholds around T_RH/k for k=2..10")
		mc        = flag.Bool("montecarlo", false, "run the Monte Carlo cross-check")
	)
	flag.Parse()

	if *sweep {
		t := stats.NewTable("T", "k", "Balls/iter", "Attack iterations", "Attack time")
		for k := 2; k <= 10; k++ {
			T := *trh / k
			m := security.PaperModel(T)
			m.RowHammerThreshold = *trh
			t.AddRow(T, k, fmt.Sprintf("%.0f", m.Balls()),
				fmt.Sprintf("%.3g", m.AttackIterations()),
				security.FormatDuration(m.AttackSeconds()))
		}
		fmt.Print(t.String())
		return
	}

	m := security.PaperModel(*threshold)
	m.RowHammerThreshold = *trh
	fmt.Printf("Model: N=%d rows/bank, A=%d ACT/epoch, D=%.3f, T=%d, T_RH=%d (k=%d)\n\n",
		m.RowsPerBank, m.ACTMax, m.DutyCycle, m.SwapThreshold, m.RowHammerThreshold, m.K())
	fmt.Printf("Balls per iteration (A*D/T):   %.0f\n", m.Balls())
	fmt.Printf("P(row gets k swaps) per epoch: %.3g\n", m.ExpectedRowsWithKSwaps(m.K())/float64(m.RowsPerBank))
	fmt.Printf("Expected attack iterations:    %.3g\n", m.AttackIterations())
	fmt.Printf("Expected attack time:          %s\n", security.FormatDuration(m.AttackSeconds()))

	all := security.AllBankPaperModel(*threshold)
	all.RowHammerThreshold = *trh
	fmt.Printf("All-bank attack time (D=0.55): %s\n", security.FormatDuration(all.AttackSeconds()))

	fmt.Printf("\nDuty cycle model: single-bank %.3f, all-bank %.3f\n",
		security.DutyCycle(*threshold, 45e-9, 2.9e-6, 1),
		security.DutyCycle(*threshold, 45e-9, 2.9e-6, 8))

	if *mc {
		fmt.Println("\nMonte Carlo cross-check (scaled: 256 buckets, 512 balls, k=5):")
		scaled := security.Model{RowsPerBank: 256, ACTMax: 512, DutyCycle: 1,
			SwapThreshold: 1, RowHammerThreshold: 5, Banks: 1}
		fmt.Printf("  analytic P(>=k) = %.4g\n", scaled.ProbAtLeastK(5))
		fmt.Printf("  simulated       = %.4g\n", security.MonteCarloProbK(256, 512, 5, 2000, 42))
	}
}
