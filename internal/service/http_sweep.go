package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"repro/internal/sim"
)

// sweepPrefix roots the sweep API. See Handler for the route table.
const sweepPrefix = "/v1/sweeps"

// SweepResultsEnvelope is the one-payload answer of
// GET /v1/sweeps/{id}/results: every held child result keyed by child
// content hash. Keys are hashes, not job ids, so the payload is stable
// across restarts and across the fleet (ids are node-scoped; hashes are
// global).
type SweepResultsEnvelope struct {
	ID      string                `json:"id"`
	Hash    string                `json:"hash"`
	State   State                 `json:"state"`
	Error   string                `json:"error,omitempty"`
	Total   int                   `json:"total"`
	Results map[string]sim.Result `json:"results"`
}

// ReadSweepSpec decodes a sweep submission body with the same size
// bound and strict field checking as ReadSpec. Exported for the fleet
// handler.
func ReadSweepSpec(w http.ResponseWriter, r *http.Request) (SweepSpec, bool) {
	var ss SweepSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&ss); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Errorf("sweep spec exceeds %d bytes", tooBig.Limit))
			return SweepSpec{}, false
		}
		writeError(w, http.StatusBadRequest, fmt.Errorf("decoding sweep spec: %w", err))
		return SweepSpec{}, false
	}
	return ss, true
}

// RespondSubmitSweep submits ss to m and writes the canonical response:
// 201 on acceptance, 200 when the submission coalesced onto a running
// sweep with the same hash, 503 on drain/shutdown, 400 on an invalid or
// oversized expansion. Exported so the fleet handler answers
// byte-identically.
func RespondSubmitSweep(m *Manager, w http.ResponseWriter, ss SweepSpec) {
	sw, created, err := m.SubmitSweep(ss)
	switch {
	case errors.Is(err, ErrDraining):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, ErrClosed):
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return
	}
	status := http.StatusCreated
	if !created {
		status = http.StatusOK // coalesced onto the running sweep
	}
	writeJSON(w, status, m.snapshotSweep(sw, false))
}

func handleSubmitSweep(m *Manager, w http.ResponseWriter, r *http.Request) {
	ss, ok := ReadSweepSpec(w, r)
	if !ok {
		return
	}
	RespondSubmitSweep(m, w, ss)
}

func handleListSweeps(m *Manager, w http.ResponseWriter, r *http.Request) {
	views := []SweepView{}
	for _, sw := range m.ListSweeps() {
		views = append(views, m.snapshotSweep(sw, false))
	}
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": views})
}

func handleGetSweep(m *Manager, w http.ResponseWriter, r *http.Request) {
	sw, ok := m.GetSweep(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrSweepNotFound)
		return
	}
	writeJSON(w, http.StatusOK, m.snapshotSweep(sw, true))
}

func handleSweepResults(m *Manager, w http.ResponseWriter, r *http.Request) {
	sw, ok := m.GetSweep(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, ErrSweepNotFound)
		return
	}
	v := m.snapshotSweep(sw, false)
	if !v.State.terminal() {
		// Still expanding or waiting on children: come back, carrying the
		// aggregate progress so pollers can display done/total.
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeJSON(w, http.StatusAccepted, v)
		return
	}
	writeJSON(w, http.StatusOK, SweepResultsEnvelope{
		ID:      v.ID,
		Hash:    v.Hash,
		State:   v.State,
		Error:   v.Error,
		Total:   v.Total,
		Results: m.SweepResults(sw),
	})
}

func handleDeleteSweep(m *Manager, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	sw, ok := m.GetSweep(id)
	if !ok {
		writeError(w, http.StatusNotFound, ErrSweepNotFound)
		return
	}
	if cancelled, err := m.CancelSweep(id); !cancelled {
		if errors.Is(err, ErrSweepNotFound) {
			writeError(w, http.StatusNotFound, ErrSweepNotFound)
			return
		}
		// Already terminal: DELETE retires the record.
		if err := m.RemoveSweep(id); err != nil {
			if errors.Is(err, ErrSweepNotFound) {
				writeError(w, http.StatusNotFound, ErrSweepNotFound)
				return
			}
			writeError(w, http.StatusConflict, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, m.snapshotSweep(sw, false))
}

// handleResultByHash serves GET /v1/results/{hash}: the durable result
// store addressed by content hash instead of job id. This is what lets
// a client recover from a lost job id (e.g. a fleet owner died and a
// peer holds the replica) without resubmitting finished work.
func handleResultByHash(m *Manager, w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	res, ok := m.ResultByHash(hash)
	if !ok {
		writeError(w, http.StatusNotFound,
			fmt.Errorf("service: no result for hash %s", hash))
		return
	}
	writeJSON(w, http.StatusOK, ResultEnvelope{
		Hash: hash, CacheHit: true, Result: res,
	})
}
