package experiments

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

// quickScale keeps simulation-backed experiment tests fast: 1 ms epochs,
// one epoch per run, two contrasting workloads (hot hmmer, cold mcf).
func quickScale(names ...string) Scale {
	if len(names) == 0 {
		names = []string{"hmmer", "mcf"}
	}
	var ws []trace.Workload
	for _, n := range names {
		w, ok := trace.ByName(n)
		if !ok {
			panic("unknown workload " + n)
		}
		ws = append(ws, w)
	}
	return Scale{Factor: 64, Epochs: 1, Seed: 5, Workloads: ws}
}

func TestTable1Render(t *testing.T) {
	out := Table1().String()
	for _, want := range []string{"DDR3 (old)", "139K", "LPDDR4 (new)", "4.8K"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable2Render(t *testing.T) {
	out := Table2().String()
	for _, want := range []string{"ROB size", "192", "32 GB - DDR4", "128K", "16 x 1 x 2"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q:\n%s", want, out)
		}
	}
}

func TestTable3Measurement(t *testing.T) {
	rows, tab, err := Table3(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// hmmer (row 0) must measure far more hot rows than mcf (row 1), and
	// measured MPKI must be near the catalog value.
	if rows[0].MeasuredHotRows < 10*rows[1].MeasuredHotRows+1 {
		t.Errorf("hot-row ordering lost: %+v", rows)
	}
	for _, r := range rows {
		if r.MeasuredMPKI < r.Workload.MPKI*0.6 || r.MeasuredMPKI > r.Workload.MPKI*1.4 {
			t.Errorf("%s MPKI %.2f vs catalog %.2f", r.Workload.Name, r.MeasuredMPKI, r.Workload.MPKI)
		}
	}
	if tab.Rows() != 2 {
		t.Errorf("table rows %d", tab.Rows())
	}
}

func TestTable4Render(t *testing.T) {
	out := Table4().String()
	for _, want := range []string{"960", "800", "685", "years", "all-bank"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 4 missing %q:\n%s", want, out)
		}
	}
}

func TestTable5Render(t *testing.T) {
	out := Table5().String()
	for _, want := range []string{"RIT", "Tracker", "Swap-Buffers", "Total", "Per rank"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 5 missing %q:\n%s", want, out)
		}
	}
}

func TestTable6Measurement(t *testing.T) {
	res, tab, err := Table6(quickScale("bzip2"))
	if err != nil {
		t.Fatal(err)
	}
	// Row-swap DRAM overhead is small but positive for a swapping
	// workload; SRAM power lands near the paper's 903 mW.
	if res.DRAMOverheadPercent < 0 || res.DRAMOverheadPercent > 10 {
		t.Errorf("DRAM overhead %.2f%%", res.DRAMOverheadPercent)
	}
	if res.SRAMPowerMW < 700 || res.SRAMPowerMW > 1100 {
		t.Errorf("SRAM power %.0f mW", res.SRAMPowerMW)
	}
	if tab.Rows() != 2 {
		t.Errorf("table rows %d", tab.Rows())
	}
}

func TestTable7DefenseMatrix(t *testing.T) {
	rows, tab := Table7()
	if len(rows) != 4 {
		t.Fatalf("%d cells", len(rows))
	}
	byKey := map[string]Table7Row{}
	for _, r := range rows {
		byKey[r.Defense+"/"+r.Attack] = r
	}
	if !byKey["Victim-Focused (ideal)/double-sided"].Defended {
		t.Error("VFM must stop classic Row Hammer")
	}
	if byKey["Victim-Focused (ideal)/half-double"].Defended {
		t.Error("VFM must lose to Half-Double")
	}
	if !byKey["RRS/double-sided"].Defended || !byKey["RRS/half-double"].Defended {
		t.Error("RRS must stop both patterns")
	}
	if !strings.Contains(tab.String(), "BIT FLIPS") {
		t.Error("table must show the VFM failure")
	}
}

func TestFigure5SwapOrdering(t *testing.T) {
	rows, _, err := Figure5(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].SwapsPerEpoch < 10 {
		t.Errorf("hmmer swaps/epoch = %v, want many", rows[0].SwapsPerEpoch)
	}
	if rows[1].SwapsPerEpoch > rows[0].SwapsPerEpoch/5 {
		t.Errorf("mcf swaps (%v) not far below hmmer (%v)",
			rows[1].SwapsPerEpoch, rows[0].SwapsPerEpoch)
	}
}

func TestFigure6SlowdownSmall(t *testing.T) {
	rows, tab, err := Figure6(quickScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Normalized < 0.85 || r.Normalized > 1.02 {
			t.Errorf("%s normalized %.4f outside [0.85, 1.02]", r.Workload, r.Normalized)
		}
	}
	if !strings.Contains(tab.String(), "GEOMEAN") {
		t.Error("missing geomean row")
	}
}

func TestFigure7NoFlips(t *testing.T) {
	res, tab := Figure7(2)
	if !res.Defended() {
		t.Fatalf("random chase flipped bits: %d", res.Flips)
	}
	if !strings.Contains(tab.String(), "random-chase") {
		t.Error("table missing pattern name")
	}
}

func TestFigure9MonotoneGrowth(t *testing.T) {
	o := DefaultFigure9Options()
	o.Sets = 16
	o.DemandWays = 6
	o.MaxInstalls = 300000
	pts, _ := Figure9(o)
	if len(pts) < 4 {
		t.Fatalf("only %d points", len(pts))
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Log10Installs <= pts[i-1].Log10Installs {
			t.Fatalf("installs not increasing with extra ways: %+v", pts)
		}
	}
	// The last points are extrapolated.
	if pts[len(pts)-1].Measured {
		t.Error("6 extra ways should be extrapolated")
	}
}

func TestFigure10MoreSlowdownAtLowerThreshold(t *testing.T) {
	if testing.Short() {
		t.Skip("threshold sweep skipped in -short")
	}
	pts, _, err := Figure10(quickScale("bzip2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("%d points", len(pts))
	}
	// The 0.25x point must be the slowest; the 4x point near 1.0.
	if pts[0].GeoMean > pts[4].GeoMean {
		last := pts[4].GeoMean
		first := pts[0].GeoMean
		t.Fatalf("slowdown trend inverted: 0.25x=%.4f, 4x=%.4f", first, last)
	}
	if pts[4].GeoMean < 0.97 {
		t.Errorf("4x threshold slowdown too large: %.4f", pts[4].GeoMean)
	}
}

func TestFigure11BlockHammerWorse(t *testing.T) {
	if testing.Short() {
		t.Skip("S-curve comparison skipped in -short")
	}
	series, tab, err := Figure11(quickScale("hmmer", "bzip2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != 3 {
		t.Fatalf("%d series", len(series))
	}
	// BlockHammer's worst case must be worse than RRS's worst case on
	// hot workloads (the Figure 11 shape).
	if series[1].Norms[0] > series[0].Norms[0] {
		t.Errorf("BH-512 worst case %.4f better than RRS %.4f",
			series[1].Norms[0], series[0].Norms[0])
	}
	if !strings.Contains(tab.String(), "GEOMEAN") {
		t.Error("missing geomean")
	}
}

func TestDoSOrdering(t *testing.T) {
	rows, _ := DoS(2)
	if len(rows) != 3 {
		t.Fatalf("%d rows", len(rows))
	}
	var rrs, bh DoSRow
	for _, r := range rows {
		switch r.Defense {
		case "RRS":
			rrs = r
		case "BlockHammer":
			bh = r
		}
	}
	if bh.Slowdown < rrs.Slowdown {
		t.Fatalf("BlockHammer slowdown %.1fx below RRS %.1fx", bh.Slowdown, rrs.Slowdown)
	}
	if rrs.Slowdown > 5 {
		t.Errorf("RRS attacker slowdown %.1fx, want small", rrs.Slowdown)
	}
}

func TestTrackerAblationAgrees(t *testing.T) {
	rows, _, err := TrackerAblation(quickScale(), "hmmer")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// Both trackers guarantee the same detection; swap counts and
	// performance must be close.
	a, b := rows[0], rows[1]
	if b.SwapsPerEpoch == 0 || a.SwapsPerEpoch == 0 {
		t.Fatalf("no swaps in ablation: %+v", rows)
	}
	ratio := a.SwapsPerEpoch / b.SwapsPerEpoch
	if ratio < 0.7 || ratio > 1.4 {
		t.Errorf("tracker swap counts diverge: %+v", rows)
	}
}

func TestUnknownWorkloadError(t *testing.T) {
	if _, _, err := TrackerAblation(quickScale(), "nope"); err == nil {
		t.Fatal("expected error")
	}
}

func TestTrackerVsProbabilistic(t *testing.T) {
	rows, tab, err := TrackerVsProbabilistic(quickScale(), "mcf")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	// The state-less variant swaps vastly more on a flat, memory-heavy
	// workload (its swap count scales with total activations).
	if rows[1].SwapsPerEpoch < 5*rows[0].SwapsPerEpoch+5 {
		t.Errorf("probabilistic swaps (%v) not far above tracked (%v)",
			rows[1].SwapsPerEpoch, rows[0].SwapsPerEpoch)
	}
	if !strings.Contains(tab.String(), "state-less") {
		t.Error("table missing variant label")
	}
}

func TestAttackDetectionExperiment(t *testing.T) {
	res, tab := AttackDetection(6)
	if res.AttackDetections == 0 {
		t.Error("chase attack not detected")
	}
	// Benign false positives are rare, not impossible; the attack must
	// dominate by a wide margin.
	if res.BenignDetections*4 >= res.AttackDetections {
		t.Errorf("benign detections (%d) not far below attack (%d)",
			res.BenignDetections, res.AttackDetections)
	}
	if res.AttackFlips != 0 {
		t.Errorf("attack flipped %d bits despite detection", res.AttackFlips)
	}
	if !strings.Contains(tab.String(), "random-chase") {
		t.Error("table missing scenario")
	}
}

func TestMixedWorkloads(t *testing.T) {
	rows, tab, err := MixedWorkloads(quickScale(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("%d mixes", len(rows))
	}
	if rows[0].Normalized < 0.85 || rows[0].Normalized > 1.02 {
		t.Errorf("mix normalized %.4f", rows[0].Normalized)
	}
	if !strings.Contains(tab.String(), "mix1") {
		t.Error("missing mix name")
	}
}

func TestRowCloneAblation(t *testing.T) {
	rows, tab := RowCloneAblation(2)
	if len(rows) != 2 {
		t.Fatalf("%d rows", len(rows))
	}
	for _, r := range rows {
		if !r.Defended {
			t.Errorf("%s: not defended", r.Variant)
		}
	}
	// The RowClone path must throttle the attacker less.
	if rows[1].AttackerSlowdown >= rows[0].AttackerSlowdown {
		t.Errorf("RowClone slowdown %.2f not below swap-buffer %.2f",
			rows[1].AttackerSlowdown, rows[0].AttackerSlowdown)
	}
	if !strings.Contains(tab.String(), "RowClone") {
		t.Error("missing variant label")
	}
}
