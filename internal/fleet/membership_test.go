package fleet

import "testing"

func TestMembershipMergeRules(t *testing.T) {
	pA := Peer{ID: "a", URL: "http://a1"}
	pB := Peer{ID: "b", URL: "http://b1"}
	m := newMembership("a", []Peer{pA, pB})

	// Higher epoch wins, in either direction.
	if !m.merge([]Member{{Peer: Peer{ID: "b", URL: "http://b2"}, Epoch: 3}}) {
		t.Fatalf("higher-epoch row did not merge")
	}
	if row, _ := m.member("b"); row.Peer.URL != "http://b2" || row.Epoch != 3 {
		t.Fatalf("b = %+v, want epoch-3 row", row)
	}
	if m.merge([]Member{{Peer: pB, Epoch: 2}}) {
		t.Fatalf("lower-epoch row merged")
	}

	// Equal epoch: a tombstone beats an alive row — a leave and a
	// concurrent heartbeat about the same epoch resolve to departed.
	if !m.merge([]Member{{Peer: Peer{ID: "b", URL: "http://b2"}, Epoch: 3, Left: true}}) {
		t.Fatalf("tombstone at equal epoch did not merge")
	}
	if row, _ := m.member("b"); !row.Left {
		t.Fatalf("b not tombstoned: %+v", row)
	}
	// ...and once departed, an equal-or-older alive row never
	// resurrects it.
	for _, epoch := range []uint64{1, 2, 3} {
		if m.merge([]Member{{Peer: pB, Epoch: epoch}}) {
			t.Fatalf("stale alive row at epoch %d resurrected b", epoch)
		}
	}
	// A genuinely newer announcement (the rejoin protocol) does.
	if !m.merge([]Member{{Peer: pB, Epoch: 4}}) {
		t.Fatalf("rejoin row did not merge")
	}
	if row, _ := m.member("b"); row.Left {
		t.Fatalf("b still tombstoned after epoch-4 rejoin")
	}

	// Zero-value and malformed rows never merge.
	if m.merge([]Member{{}, {Peer: Peer{ID: "c"}}}) {
		t.Fatalf("malformed rows merged")
	}
}

func TestMembershipAnnounceAndLeave(t *testing.T) {
	self := Peer{ID: "a", URL: "http://a1"}
	m := newMembership("a", []Peer{self})

	// Announce over an up-to-date row is a no-op.
	if m.announce(self) {
		t.Fatalf("redundant announce reported a change")
	}
	// leave tombstones with a bumped epoch, idempotently.
	if !m.leave() {
		t.Fatalf("leave reported no change")
	}
	if m.leave() {
		t.Fatalf("second leave reported a change")
	}
	row, _ := m.member("a")
	if !row.Left || row.Epoch != 2 {
		t.Fatalf("after leave: %+v, want Left at epoch 2", row)
	}
	if m.alive() != 0 {
		t.Fatalf("alive = %d after leave, want 0", m.alive())
	}
	// Re-announcing (restart after drain) supersedes the tombstone.
	if !m.announce(self) {
		t.Fatalf("announce over tombstone reported no change")
	}
	row, _ = m.member("a")
	if row.Left || row.Epoch != 3 {
		t.Fatalf("after rejoin: %+v, want alive at epoch 3", row)
	}
	// Moving to a new URL bumps again.
	if !m.announce(Peer{ID: "a", URL: "http://a2"}) {
		t.Fatalf("new-URL announce reported no change")
	}
	if row, _ = m.member("a"); row.Peer.URL != "http://a2" || row.Epoch != 4 {
		t.Fatalf("after move: %+v, want http://a2 at epoch 4", row)
	}
}

func TestMembershipRemotesExcludesSelfAndLeft(t *testing.T) {
	m := newMembership("a", []Peer{
		{ID: "a", URL: "http://a"}, {ID: "b", URL: "http://b"}, {ID: "c", URL: "http://c"},
	})
	m.merge([]Member{{Peer: Peer{ID: "c", URL: "http://c"}, Epoch: 2, Left: true}})
	remotes := m.remotes()
	if len(remotes) != 1 || remotes[0].ID != "b" {
		t.Fatalf("remotes = %+v, want just b", remotes)
	}
	if got := len(m.snapshot()); got != 3 {
		t.Fatalf("snapshot has %d rows, want 3 (tombstones included)", got)
	}
}
