package resilience

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"syscall"
	"testing"
	"time"
)

// instant is a Sleep that never waits but records requested delays.
func instant(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return ctx.Err()
	}
}

func TestClassification(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want bool
	}{
		{"nil", nil, false},
		{"plain", errors.New("boom"), false},
		{"marked transient", MarkTransient(errors.New("blip")), true},
		{"marked permanent", MarkPermanent(&net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}), false},
		{"wrapped transient", fmt.Errorf("outer: %w", MarkTransient(errors.New("blip"))), true},
		{"net.OpError", &net.OpError{Op: "dial", Err: syscall.ECONNREFUSED}, true},
		{"unexpected EOF", fmt.Errorf("read: %w", io.ErrUnexpectedEOF), true},
		{"context canceled", context.Canceled, false},
		{"deadline exceeded", context.DeadlineExceeded, false},
		{"retry-after hint", WithRetryAfter(errors.New("429"), time.Second), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsTransient(tc.err); got != tc.want {
				t.Errorf("IsTransient(%v) = %v, want %v", tc.err, got, tc.want)
			}
		})
	}
}

func TestTransientStatus(t *testing.T) {
	for code, want := range map[int]bool{
		200: false, 202: false, 400: false, 404: false, 409: false,
		413: false, 422: false, 429: true, 500: true, 501: false,
		502: true, 503: true,
	} {
		if got := TransientStatus(code); got != want {
			t.Errorf("TransientStatus(%d) = %v, want %v", code, got, want)
		}
	}
}

func TestDelayFullJitterBounds(t *testing.T) {
	p := Policy{BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second,
		Multiplier: 2, Rand: rand.New(rand.NewSource(1))}
	caps := []time.Duration{
		100 * time.Millisecond, // attempt 0
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second, // capped
		time.Second,
	}
	for attempt, cap := range caps {
		for i := 0; i < 200; i++ {
			d := p.Delay(attempt)
			if d <= 0 || d > cap {
				t.Fatalf("Delay(%d) = %v outside (0, %v]", attempt, d, cap)
			}
		}
	}
}

func TestDelayDeterministicWithSeed(t *testing.T) {
	a := Policy{Rand: rand.New(rand.NewSource(42))}
	b := Policy{Rand: rand.New(rand.NewSource(42))}
	for i := 0; i < 16; i++ {
		if da, db := a.Delay(i), b.Delay(i); da != db {
			t.Fatalf("attempt %d: seeded delays diverge: %v vs %v", i, da, db)
		}
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	calls := 0
	perm := errors.New("deterministic failure")
	err := Do(context.Background(), Policy{}, func(context.Context) error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("err=%v calls=%d; want the permanent error after one call", err, calls)
	}
}

func TestDoRetriesTransientUntilSuccess(t *testing.T) {
	var delays []time.Duration
	calls := 0
	p := Policy{MaxAttempts: 10, Sleep: instant(&delays),
		Rand: rand.New(rand.NewSource(7))}
	err := Do(context.Background(), p, func(context.Context) error {
		calls++
		if calls < 4 {
			return MarkTransient(errors.New("blip"))
		}
		return nil
	})
	if err != nil || calls != 4 {
		t.Fatalf("err=%v calls=%d; want success on fourth call", err, calls)
	}
	if len(delays) != 3 {
		t.Fatalf("slept %d times, want 3", len(delays))
	}
}

func TestDoExhaustsAttempts(t *testing.T) {
	var delays []time.Duration
	calls := 0
	blip := MarkTransient(errors.New("blip"))
	p := Policy{MaxAttempts: 3, Sleep: instant(&delays)}
	err := Do(context.Background(), p, func(context.Context) error {
		calls++
		return blip
	})
	if !errors.Is(err, blip) || calls != 3 {
		t.Fatalf("err=%v calls=%d; want the transient error after 3 calls", err, calls)
	}
}

func TestDoHonorsRetryAfterHint(t *testing.T) {
	var delays []time.Duration
	calls := 0
	p := Policy{MaxAttempts: 2, Sleep: instant(&delays),
		BaseDelay: time.Millisecond, MaxDelay: time.Millisecond}
	Do(context.Background(), p, func(context.Context) error {
		calls++
		return WithRetryAfter(errors.New("overloaded"), 3*time.Second)
	})
	if len(delays) != 1 || delays[0] < 3*time.Second {
		t.Fatalf("delays = %v; want the 3s Retry-After hint to override backoff", delays)
	}
}

func TestDoStopsWhenDeadlineCannotOutliveWait(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	calls := 0
	blip := MarkTransient(errors.New("blip"))
	p := Policy{MaxAttempts: -1, BaseDelay: time.Hour, MaxDelay: time.Hour}
	err := Do(ctx, p, func(context.Context) error {
		calls++
		return blip
	})
	if !errors.Is(err, blip) {
		t.Fatalf("err = %v, want the underlying transient error", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d; an hour-long wait cannot fit a 10ms deadline", calls)
	}
}

func TestDoRespectsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := Do(ctx, Policy{MaxAttempts: -1, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		func(context.Context) error {
			calls++
			if calls == 2 {
				cancel()
			}
			return MarkTransient(errors.New("blip"))
		})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled joined in", err)
	}
}

func TestDoUnlimitedAttemptsEventuallySucceed(t *testing.T) {
	var delays []time.Duration
	calls := 0
	p := Policy{MaxAttempts: -1, Sleep: instant(&delays)}
	err := Do(context.Background(), p, func(context.Context) error {
		calls++
		if calls < 9 {
			return MarkTransient(errors.New("blip"))
		}
		return nil
	})
	if err != nil || calls != 9 {
		t.Fatalf("err=%v calls=%d; want success on the ninth call", err, calls)
	}
}

func TestDoExpiredContextNeverCallsFn(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead before Do starts
	calls := 0
	err := Do(ctx, Policy{}, func(context.Context) error {
		calls++
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Fatalf("fn called %d times on an expired context, want 0", calls)
	}
}

func TestDoRetryAfterBeyondDeadlineGivesUpImmediately(t *testing.T) {
	// The server asks for a 10s wait but the caller has ~50ms left: Do
	// must return the real failure promptly rather than sleep toward a
	// deadline it cannot survive — or worse, return a bare context
	// error that hides what the server said.
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	overloaded := errors.New("overloaded")
	calls := 0
	start := time.Now()
	err := Do(ctx, Policy{MaxAttempts: 5, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
		func(context.Context) error {
			calls++
			return WithRetryAfter(overloaded, 10*time.Second)
		})
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Do took %v; must give up without serving the 10s hint", elapsed)
	}
	if !errors.Is(err, overloaded) {
		t.Fatalf("err = %v, want the server's error surfaced", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (the hint can never fit the deadline)", calls)
	}
}

func TestDoJitterStaysInBoundsAndAboveHint(t *testing.T) {
	// Every recorded sleep must respect both sides of the contract:
	// never above the attempt's jitter cap, never below a Retry-After
	// hint that exceeds the drawn jitter.
	var delays []time.Duration
	const hint = 5 * time.Millisecond
	p := Policy{MaxAttempts: 8, BaseDelay: 10 * time.Millisecond,
		MaxDelay: 80 * time.Millisecond, Multiplier: 2,
		Rand: rand.New(rand.NewSource(99)), Sleep: instant(&delays)}
	Do(context.Background(), p, func(context.Context) error {
		return WithRetryAfter(errors.New("blip"), hint)
	})
	if len(delays) != 7 {
		t.Fatalf("slept %d times, want 7", len(delays))
	}
	cap := 10 * time.Millisecond
	for attempt, d := range delays {
		if d < hint {
			t.Fatalf("attempt %d slept %v, below the %v Retry-After floor", attempt, d, hint)
		}
		if d > cap {
			t.Fatalf("attempt %d slept %v, above the %v jitter cap", attempt, d, cap)
		}
		if cap < 80*time.Millisecond {
			cap *= 2
		}
	}
}
