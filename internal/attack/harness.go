package attack

import (
	"repro/internal/config"
	"repro/internal/dram"
	"repro/internal/memctrl"
)

// Options configures an attack run.
type Options struct {
	// Bank is the bank under attack.
	Bank dram.BankID
	// NewPattern, when set, spreads the attack over every bank of the
	// system (the paper's all-bank attack of Section 5.3.2): each bank
	// runs its own instance of the pattern, and the swaps from all banks
	// of a channel share its bus, crushing the attacker's duty cycle.
	// The p argument of Run is ignored in this mode.
	NewPattern func() Pattern
	// Epochs is the attack duration in refresh epochs.
	Epochs int
	// MaxAccesses optionally bounds the number of accesses (0 = no bound).
	MaxAccesses int64
	// StopAtFirstFlip ends the run as soon as the fault model records a
	// flip (used when measuring time-to-first-flip).
	StopAtFirstFlip bool
}

// Result reports an attack run's outcome.
type Result struct {
	// Pattern is the attack pattern name.
	Pattern string
	// Flips is the number of bit-flip events the fault model recorded.
	Flips int
	// FirstFlipTime is the bus-cycle time of the first flip (-1 if none).
	FirstFlipTime int64
	// Accesses is the number of memory accesses the attacker issued.
	Accesses int64
	// EndTime is when the attack stopped (bus cycles).
	EndTime int64
	// AccessRate is accesses per bus cycle — the attacker's achieved
	// throughput, used for the denial-of-service comparison (BlockHammer
	// throttles this ~200x; RRS only ~2x).
	AccessRate float64
}

// Run drives the attack pattern against the memory controller for the
// requested number of epochs and reports what the fault model observed.
// The attacker issues dependent back-to-back reads (each access starts
// when the previous completes), the fastest a single attack thread can
// hammer.
func Run(ctl *memctrl.Controller, fm *FaultModel, p Pattern, opts Options) Result {
	cfg := ctl.System().Config()
	if opts.Epochs <= 0 {
		opts.Epochs = 1
	}
	deadline := int64(opts.Epochs) * cfg.EpochCycles
	startFlips := fm.FlipCount()

	banks := []dram.BankID{opts.Bank}
	patterns := []Pattern{p}
	if opts.NewPattern != nil {
		banks = banks[:0]
		patterns = patterns[:0]
		ctl.System().EachBank(func(id dram.BankID, _ *dram.Bank) {
			banks = append(banks, id)
			patterns = append(patterns, opts.NewPattern())
		})
	}

	res := Result{Pattern: patterns[0].Name(), FirstFlipTime: -1}
	now := int64(0)
	bi := 0
	for now < deadline {
		if opts.MaxAccesses > 0 && res.Accesses >= opts.MaxAccesses {
			break
		}
		row := patterns[bi].NextRow()
		line := ctl.System().Encode(dram.Address{BankID: banks[bi], Row: row})
		bi = (bi + 1) % len(banks)
		now = ctl.Access(line, false, now)
		res.Accesses++
		if fm.FlipCount() > startFlips && res.FirstFlipTime < 0 {
			res.FirstFlipTime = now
			if opts.StopAtFirstFlip {
				break
			}
		}
	}
	ctl.AdvanceTo(deadline)
	res.Flips = fm.FlipCount() - startFlips
	res.EndTime = now
	if now > 0 {
		res.AccessRate = float64(res.Accesses) / float64(now)
	}
	return res
}

// Defended reports whether the defense held (no flips).
func (r Result) Defended() bool { return r.Flips == 0 }

// NewSystem builds a DRAM system, fault model and controller wired with a
// mitigation — the standard fixture for attack experiments. mitigation is
// a factory so it can wrap the newly built *dram.System; nil means no
// defense. trh/alpha2 follow NewFaultModel semantics.
func NewSystem(cfg config.Config, trh, alpha2 float64,
	mitigation func(*dram.System) memctrl.Mitigation) (*memctrl.Controller, *FaultModel) {
	sys := dram.MustNew(cfg)
	fm := NewFaultModel(sys, trh, alpha2)
	var mit memctrl.Mitigation = memctrl.None{}
	if mitigation != nil {
		if m := mitigation(sys); m != nil {
			mit = m
		}
	}
	return memctrl.New(sys, mit), fm
}
