// BlockHammer comparison example: the denial-of-service argument of
// Section 8.1, live.
//
// Both RRS and BlockHammer are aggressor-focused, but they differ in the
// mitigating action: RRS pays a ~2.9 us swap once per T_RRS activations,
// while BlockHammer delays *every* activation of a blacklisted row by tens
// of microseconds. Under attack the attacker is throttled hard either way;
// the difference is what happens to a benign workload whose hot rows get
// blacklisted.
//
//	go run ./examples/blockhammer
package main

import (
	"fmt"
	"log"

	"repro/internal/attack"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/sim"
	"repro/internal/trace"
)

const scale = 16

func rrsFactory(sys *dram.System) memctrl.Mitigation {
	r, err := core.New(sys, core.ScaledParams(sys.Config()))
	if err != nil {
		panic(err)
	}
	return r
}

func bhFactory(sys *dram.System) memctrl.Mitigation {
	p := mitigation.DefaultBlockHammerParams()
	p.BlacklistThreshold = 512 / scale
	return mitigation.NewBlockHammer(sys, p)
}

func main() {
	// Part 1: benign performance on a hot workload (hmmer hammers ~1675
	// rows past 800 activations per epoch without being an attack).
	cfg := config.Default().Scaled(scale)
	w, _ := trace.ByName("hmmer")
	opts := sim.Options{
		Config:              cfg,
		Workloads:           []trace.Workload{w},
		InstructionsPerCore: 1 << 62,
		CycleLimit:          cfg.EpochCycles,
		Seed:                9,
	}
	base, err := sim.Run(opts)
	if err != nil {
		log.Fatal(err)
	}
	opts.Mitigation = rrsFactory
	rrs, err := sim.Run(opts)
	if err != nil {
		log.Fatal(err)
	}
	opts.Mitigation = bhFactory
	bh, err := sim.Run(opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Benign workload (hmmer, hot rows galore):")
	fmt.Printf("  RRS normalized performance:         %.4f\n", rrs.IPC/base.IPC)
	fmt.Printf("  BlockHammer normalized performance: %.4f\n\n", bh.IPC/base.IPC)

	// Part 2: the attacker's view — how hard each defense throttles a
	// double-sided hammer.
	acfg := config.Default()
	acfg.RowsPerBank = 4 << 10
	acfg.EpochCycles = int64(acfg.TRC) * 2400
	acfg.RowHammerThreshold = 240

	rate := func(mit func(*dram.System) memctrl.Mitigation) float64 {
		ctl, fm := attack.NewSystem(acfg, 0, attack.Alpha2For(acfg), mit)
		return attack.Run(ctl, fm, attack.NewDoubleSided(100), attack.Options{Epochs: 2}).AccessRate
	}
	baseRate := rate(nil)
	rrsRate := rate(func(sys *dram.System) memctrl.Mitigation {
		r, err := core.New(sys, core.DefaultParams(sys.Config()))
		if err != nil {
			panic(err)
		}
		return r
	})
	bhRate := rate(func(sys *dram.System) memctrl.Mitigation {
		p := mitigation.DefaultBlockHammerParams()
		p.BlacklistThreshold = 60
		return mitigation.NewBlockHammer(sys, p)
	})
	fmt.Println("Attacker throughput (double-sided hammer):")
	fmt.Printf("  no defense:  %.5f accesses/cycle\n", baseRate)
	fmt.Printf("  RRS:         %.5f (%.1fx slower — bounded by swap time)\n",
		rrsRate, baseRate/rrsRate)
	fmt.Printf("  BlockHammer: %.5f (%.1fx slower — every ACT delayed)\n\n",
		bhRate, baseRate/bhRate)

	fmt.Println("BlockHammer throttles harder, but it cannot tell a hot benign row")
	fmt.Println("from an aggressor: the same delays hit hmmer above. RRS's swap cost")
	fmt.Println("is paid once per T_RRS activations, keeping benign overhead near zero.")
}
