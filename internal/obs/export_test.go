package obs

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func sampleTimeline() *Timeline {
	r := NewRecorder(Config{RingSize: 16})
	r.Record(KindSwap, 0, 100, 200, 1000, 0)
	r.Record(KindChannelBlocked, 0, 100, 0, 1000, 2336)
	r.SetNow(1500)
	r.RecordNow(KindRITInstall, 0, 100, 200)
	r.Record(KindEpoch, -1, 0, 0, 4096, 0)
	r.Observe(HistSwapBlock, 2336)
	r.Observe(HistRITOcc, 1)
	r.Sample(EpochSample{Epoch: 0, At: 4096, Swaps: 1, RITTuples: 1, HRTRows: 3, BlockCycles: 2336})
	return r.Timeline()
}

func TestJSONLRoundTrip(t *testing.T) {
	tl := sampleTimeline()
	var buf bytes.Buffer
	if err := WriteJSONL(&buf, tl); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(tl.Events) {
		t.Fatalf("wrote %d lines for %d events", len(lines), len(tl.Events))
	}
	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, tl.Events) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, tl.Events)
	}
}

func TestReadJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{\"kind\":\"swap\"}\nnot json\n")); err == nil {
		t.Fatal("ReadJSONL accepted garbage")
	}
}

func TestChromeTraceDecodes(t *testing.T) {
	tl := sampleTimeline()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tl, 1600); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			TID  int64          `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("chrome trace does not decode: %v", err)
	}
	// 4 events + 3 counter entries for the single epoch sample.
	if len(decoded.TraceEvents) != len(tl.Events)+3*len(tl.Samples) {
		t.Fatalf("trace has %d entries, want %d", len(decoded.TraceEvents),
			len(tl.Events)+3*len(tl.Samples))
	}
	byName := map[string]int{}
	for _, e := range decoded.TraceEvents {
		byName[e.Name]++
	}
	for _, name := range []string{"swap", "channel-blocked", "rit-install", "epoch",
		"rit_tuples", "hrt_rows", "epoch_swaps"} {
		if byName[name] == 0 {
			t.Fatalf("trace missing %q entries (have %v)", name, byName)
		}
	}
	for _, e := range decoded.TraceEvents {
		switch e.Name {
		case "channel-blocked":
			if e.Ph != "X" {
				t.Fatalf("channel-blocked rendered as ph=%q, want X", e.Ph)
			}
			// 2336 cycles at 1600 cycles/µs → 1.46 µs, the paper's swap cost.
			if e.Dur != 2336.0/1600 {
				t.Fatalf("dur = %v µs, want %v", e.Dur, 2336.0/1600)
			}
		case "swap":
			if e.Ph != "i" {
				t.Fatalf("swap rendered as ph=%q, want i", e.Ph)
			}
			if e.Ts != 1000.0/1600 {
				t.Fatalf("ts = %v, want %v", e.Ts, 1000.0/1600)
			}
		case "rit_tuples":
			if e.Ph != "C" || e.TID != -1 {
				t.Fatalf("counter entry %+v, want ph=C tid=-1", e)
			}
		}
	}
}

func TestChromeTraceZeroScaleFallsBack(t *testing.T) {
	tl := sampleTimeline()
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, tl, 0); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	// With the 1-cycle-per-µs fallback, timestamps equal raw cycles.
	if decoded.TraceEvents[0].Ts != 1000 {
		t.Fatalf("ts = %v, want raw cycle count 1000", decoded.TraceEvents[0].Ts)
	}
}
