package sim

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/trace"
)

var updateGolden = flag.Bool("update", false, "rewrite golden simulation stats")

// goldenCase pins one (workload, mitigation, seed) point of the fixed
// seed matrix.
type goldenCase struct {
	Name       string          `json:"name"`
	Workload   string          `json:"workload"`
	Mitigation string          `json:"mitigation"`
	Seed       uint64          `json:"seed"`
	Result     json.RawMessage `json:"result"`
}

func goldenMitigation(t *testing.T, name string) func(*dram.System) memctrl.Mitigation {
	t.Helper()
	switch name {
	case "none":
		return nil
	case "rrs":
		return rrsFactory
	case "blockhammer":
		return func(sys *dram.System) memctrl.Mitigation {
			p := mitigation.DefaultBlockHammerParams()
			p.BlacklistThreshold = 512 / testScale
			return mitigation.NewBlockHammer(sys, p)
		}
	default:
		t.Fatalf("unknown golden mitigation %q", name)
		return nil
	}
}

func runGoldenCase(t *testing.T, c goldenCase) Result {
	t.Helper()
	w, ok := trace.ByName(c.Workload)
	if !ok {
		t.Fatalf("unknown workload %s", c.Workload)
	}
	cfg := testConfig()
	res, err := Run(Options{
		Config:              cfg,
		Workloads:           []trace.Workload{w},
		InstructionsPerCore: 1 << 62,
		CycleLimit:          cfg.EpochCycles,
		Seed:                c.Seed,
		Mitigation:          goldenMitigation(t, c.Mitigation),
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Mitigation = nil
	// Goldens pin the statistics, not the self-verification summary:
	// under RRS_PARANOID=1 every run carries an Invariants report whose
	// check counts are cadence artifacts. Stat equivalence between the
	// modes is asserted separately in paranoid_test.go.
	res.Invariants = nil
	return res
}

// TestGoldenStatsBitIdentical asserts the engine reproduces the exact
// Result statistics recorded in testdata/golden_stats.json for a fixed
// seed matrix — every numeric field, bit for bit. This is the
// determinism guarantee the service result cache relies on (Spec.Hash →
// Result), and the contract the hot-path data-layout refactor must
// preserve: flat structures may change how state is stored, never what
// the simulation computes. Regenerate with
//
//	go test ./internal/sim -run TestGoldenStats -update
//
// only when an intentional behavioural change is being made, and say so
// in the commit.
func TestGoldenStatsBitIdentical(t *testing.T) {
	matrix := []goldenCase{
		{Name: "none-hmmer-s3", Workload: "hmmer", Mitigation: "none", Seed: 3},
		{Name: "none-mcf-s190", Workload: "mcf", Mitigation: "none", Seed: 190},
		{Name: "rrs-hmmer-s3", Workload: "hmmer", Mitigation: "rrs", Seed: 3},
		{Name: "rrs-mcf-s190", Workload: "mcf", Mitigation: "rrs", Seed: 190},
		{Name: "blockhammer-hmmer-s3", Workload: "hmmer", Mitigation: "blockhammer", Seed: 3},
		{Name: "blockhammer-mcf-s190", Workload: "mcf", Mitigation: "blockhammer", Seed: 190},
	}
	path := filepath.Join("testdata", "golden_stats.json")

	if *updateGolden {
		for i := range matrix {
			res := runGoldenCase(t, matrix[i])
			raw, err := json.Marshal(res)
			if err != nil {
				t.Fatal(err)
			}
			matrix[i].Result = raw
		}
		out, err := json.MarshalIndent(matrix, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d cases", path, len(matrix))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading goldens (run with -update to create them): %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(matrix) {
		t.Fatalf("golden file has %d cases, matrix has %d — regenerate with -update",
			len(want), len(matrix))
	}
	for i, c := range matrix {
		c := c
		c.Result = want[i].Result
		if want[i].Name != c.Name || want[i].Seed != c.Seed ||
			want[i].Workload != c.Workload || want[i].Mitigation != c.Mitigation {
			t.Fatalf("golden case %d is %+v, matrix expects %s — regenerate with -update",
				i, want[i], c.Name)
		}
		t.Run(c.Name, func(t *testing.T) {
			got := runGoldenCase(t, c)
			var exp Result
			if err := json.Unmarshal(c.Result, &exp); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, exp) {
				gotJSON, _ := json.MarshalIndent(got, "", "  ")
				t.Errorf("stats diverge from golden\ngot:  %s\nwant: %s",
					gotJSON, c.Result)
			}
		})
	}
}
