package invariant

// MergeSummaries folds per-shard engine summaries into one, in slice
// order: check counts add, and the first shard (by index, not by wall
// clock) that latched a violation supplies FirstViolation, so the merged
// report is deterministic regardless of worker scheduling.
func MergeSummaries(parts []Summary) Summary {
	var out Summary
	for _, p := range parts {
		out.Checks += p.Checks
		out.Violations += p.Violations
		if out.FirstViolation == "" {
			out.FirstViolation = p.FirstViolation
		}
		for name, n := range p.PerCheck {
			if out.PerCheck == nil {
				out.PerCheck = make(map[string]int64, len(p.PerCheck))
			}
			out.PerCheck[name] += n
		}
	}
	return out
}
