package fleet

import (
	"context"
	"testing"
	"time"

	"repro/internal/service"
)

// TestSweepChildrenSpreadAcrossFleetExactlyOnce submits one sweep to a
// single node and checks the tentpole's fleet story: the parent lives on
// the accepting node, but each expanded child routes to its ring owner
// by its own content hash, runs exactly once fleet-wide, and a
// resubmitted sweep is answered from cache without any node re-running
// anything.
func TestSweepChildrenSpreadAcrossFleetExactlyOnce(t *testing.T) {
	nodes := startFleet(t, 3, nil)
	client := fleetClient(nodes[0])
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	ss := service.SweepSpec{Base: uniqueSpec(0)}
	const children = 12
	for seed := uint64(1); seed <= children; seed++ {
		ss.Axes.Seeds = append(ss.Axes.Seeds, seed)
	}
	got, err := client.RunSweep(ctx, ss)
	if err != nil {
		t.Fatal(err)
	}
	specs, err := ss.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(specs) {
		t.Fatalf("sweep returned %d results, want %d", len(got), len(specs))
	}
	for _, sp := range specs {
		if res, ok := got[sp.Hash()]; !ok || res.IPC != float64(sp.Seed) {
			t.Errorf("child seed %d = (%+v, %v)", sp.Seed, res, ok)
		}
	}

	// Exactly once fleet-wide, and actually spread: with 12 hashes HRW-
	// ranked over 3 nodes, more than one node must own children.
	var total int64
	busy := 0
	for _, n := range nodes {
		runs := n.runs.Load()
		total += runs
		if runs > 0 {
			busy++
		}
	}
	if total != children {
		t.Errorf("fleet ran %d child jobs, want exactly %d", total, children)
	}
	if busy < 2 {
		t.Errorf("only %d node(s) ran children; ring routing did not spread the sweep", busy)
	}
	counters := nodes[0].node.Manager().Metrics().JSON().Counters
	routed := counters["rrs_fleet_sweep_children_routed_total"]
	local := counters["rrs_fleet_sweep_children_local_total"]
	if routed+local != children {
		t.Errorf("routed %d + local %d != %d children", routed, local, children)
	}
	if routed == 0 {
		t.Error("no children were routed to peer owners")
	}

	// Every child's result is addressable by hash from any node (peer
	// cache fan-out), even one that never ran it.
	other := fleetClient(nodes[2])
	if res, ok, err := other.ResultByHash(ctx, specs[0].Hash()); err != nil || !ok ||
		res.IPC != float64(specs[0].Seed) {
		t.Errorf("fleet-wide hash lookup = (%+v, %v, %v)", res, ok, err)
	}

	// Resubmission: the accepting node holds every child result (routed
	// children completed their local job records), so the second pass is
	// pure cache — no node runs anything new.
	got2, err := client.RunSweep(ctx, ss)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != len(specs) {
		t.Fatalf("resubmitted sweep returned %d results, want %d", len(got2), len(specs))
	}
	var total2 int64
	for _, n := range nodes {
		total2 += n.runs.Load()
	}
	if total2 != total {
		t.Errorf("resubmission ran %d extra child jobs, want 0", total2-total)
	}
	counters = nodes[0].node.Manager().Metrics().JSON().Counters
	if cached := counters["rrs_sweep_children_cached_total"]; cached != children {
		t.Errorf("rrs_sweep_children_cached_total = %d, want %d", cached, children)
	}
}
