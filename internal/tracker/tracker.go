// Package tracker implements the Hot-Row Tracker (HRT) of RRS: a
// Misra-Gries frequent-element tracker over DRAM row activations, as
// proposed in Graphene and adopted by the RRS paper.
//
// The Misra-Gries guarantee (Invariant 1 in the paper): with N counters and
// at most W activations in a tracking window, if N > W/T - 1 then every row
// whose true activation count reaches T (or any multiple of T) has an
// estimated counter value at least that large — so triggering a mitigation
// whenever a counter crosses a multiple of T can never miss an aggressor.
//
// Two implementations are provided behind the Tracker interface:
//
//   - CAM: the reference content-addressable implementation (Graphene
//     style), using a count-bucket structure for O(1) minimum tracking.
//     Not scalable in hardware beyond a few dozen entries, but exact.
//   - CAT: the paper's scalable implementation over a Collision Avoidance
//     Table with per-set SetMin counters (Section 6.4).
//
// Both trigger a swap recommendation each time a row's estimated count
// crosses a multiple of the threshold.
package tracker

import "repro/internal/obs"

// Tracker identifies rows whose activation count crosses multiples of a
// threshold within a tracking window (epoch).
type Tracker interface {
	// Observe records one activation of row and reports whether the row's
	// estimated count just crossed a multiple of the threshold — i.e.,
	// whether the mitigating action (row swap) should run now.
	Observe(row uint64) bool
	// ObserveN records n consecutive activations of row in one bulk
	// update, with final state identical to n Observe calls, and returns
	// how many of them crossed a multiple of the threshold. The memory
	// controller uses it to deliver a deferred same-row activation burst
	// with a single tracker update.
	ObserveN(row uint64, n int64) int
	// Contains reports whether row currently has a tracker entry. RRS
	// excludes tracked rows from being random swap destinations.
	Contains(row uint64) bool
	// Count returns the estimated activation count for row, if tracked.
	Count(row uint64) (int64, bool)
	// Spill returns the spill counter (the Misra-Gries undercount bound).
	Spill() int64
	// Len returns the number of tracked rows.
	Len() int
	// Capacity returns the maximum number of tracked rows.
	Capacity() int
	// Threshold returns the swap threshold T.
	Threshold() int64
	// Reset clears all state at the end of an epoch.
	Reset()
}

// EvictionReporter is implemented by trackers that record which entry the
// most recent install displaced. The differential oracle (Shadow) uses it
// to identify the evicted row in O(1); without it the oracle must probe
// every minimum-count candidate through the wrapped tracker's (possibly
// hash-heavy) Contains, which turns each eviction into an O(capacity)
// scan. Both built-in trackers implement it.
type EvictionReporter interface {
	// EnableEvictionLog arms the log. Recording is off until then — even
	// two unconditional stores on the eviction path are measurable on
	// eviction-heavy streams — so Evictions and LastEvicted are only
	// meaningful after arming (NewShadow arms the tracker it wraps).
	EnableEvictionLog()
	// Evictions returns the total number of entries evicted since the log
	// was armed. It is monotonic across Reset, so callers can detect an
	// eviction by comparing the value around an observation.
	Evictions() uint64
	// LastEvicted returns the row displaced by the most recent eviction
	// (meaningful only after Evictions has advanced at least once).
	LastEvicted() uint64
}

// ObsTarget is implemented by trackers that can emit insert / evict /
// threshold-crossing events into an obs.Recorder. Both built-in trackers
// implement it; the hooks follow the same one-nil-test discipline as the
// eviction log, so a tracker without a recorder attached records nothing
// and allocates nothing.
type ObsTarget interface {
	// SetObs attaches the recorder; events are stamped with the
	// recorder's clock and the given flat bank index.
	SetObs(rec *obs.Recorder, bank int32)
}

// EntriesFor returns the number of Misra-Gries entries needed to guarantee
// detection at threshold t with at most actMax activations per window:
// the smallest N with N > actMax/t - 1 (the paper's E = ACT_max / T_RRS).
func EntriesFor(actMax, t int) int {
	if t <= 0 {
		panic("tracker: threshold must be positive")
	}
	// ceil(actMax/t) always satisfies N > actMax/t - 1 and matches the
	// paper's sizing (1.36M / 800 = 1700 entries).
	n := (actMax + t - 1) / t
	if n < 1 {
		n = 1
	}
	return n
}

// crossedMultiple reports whether the count moved from prev to cur crossed
// a (positive) multiple of t.
func crossedMultiple(prev, cur, t int64) bool {
	return cur/t > prev/t
}
