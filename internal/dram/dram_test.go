package dram

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
)

func testConfig() config.Config {
	cfg := config.Default()
	cfg.RowsPerBank = 1 << 10 // keep test memory small
	return cfg
}

func TestDecodeEncodeRoundTrip(t *testing.T) {
	s := MustNew(testConfig())
	lines := uint64(s.Config().TotalRows()) * uint64(s.Config().RowBytes/s.Config().LineBytes)
	f := func(raw uint64) bool {
		line := raw % lines
		return s.Encode(s.Decode(line)) == line
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeConsecutiveLinesShareRow(t *testing.T) {
	s := MustNew(testConfig())
	a0 := s.Decode(0)
	a1 := s.Decode(1)
	if a0.Row != a1.Row || a0.BankID != a1.BankID {
		t.Fatalf("lines 0 and 1 should share a row: %+v vs %+v", a0, a1)
	}
	if a1.Col != a0.Col+1 {
		t.Fatalf("columns not consecutive: %d then %d", a0.Col, a1.Col)
	}
}

func TestDecodeRowCrossingChangesChannel(t *testing.T) {
	s := MustNew(testConfig())
	linesPerRow := uint64(s.Config().RowBytes / s.Config().LineBytes)
	a := s.Decode(linesPerRow - 1)
	b := s.Decode(linesPerRow)
	if a.Channel == b.Channel {
		t.Fatalf("row crossing should switch channel: %+v vs %+v", a, b)
	}
}

func TestDecodeFieldsInRange(t *testing.T) {
	s := MustNew(testConfig())
	cfg := s.Config()
	for line := uint64(0); line < 100000; line += 97 {
		a := s.Decode(line)
		if a.Channel < 0 || a.Channel >= cfg.Channels ||
			a.Rank < 0 || a.Rank >= cfg.Ranks ||
			a.Bank < 0 || a.Bank >= cfg.Banks ||
			a.Row < 0 || a.Row >= cfg.RowsPerBank ||
			a.Col < 0 || a.Col >= cfg.RowBytes/cfg.LineBytes {
			t.Fatalf("decoded address out of range: %+v", a)
		}
	}
}

func TestActivateCountsPerEpoch(t *testing.T) {
	s := MustNew(testConfig())
	id := BankID{Channel: 0, Rank: 0, Bank: 3}
	for i := 0; i < 5; i++ {
		s.Activate(id, 7, int64(i))
	}
	s.Activate(id, 9, 10)
	if got := s.ActCount(id, 7); got != 5 {
		t.Fatalf("ActCount(7) = %d, want 5", got)
	}
	if got := s.ActCount(id, 9); got != 1 {
		t.Fatalf("ActCount(9) = %d, want 1", got)
	}
	if got := s.RowsWithActsAtLeast(id, 2); got != 1 {
		t.Fatalf("RowsWithActsAtLeast(2) = %d, want 1", got)
	}
	if got := s.RowsWithActsAtLeast(id, 1); got != 2 {
		t.Fatalf("RowsWithActsAtLeast(1) = %d, want 2", got)
	}
	s.ResetEpoch()
	if got := s.ActCount(id, 7); got != 0 {
		t.Fatalf("after reset, ActCount = %d", got)
	}
	if got := s.RowsWithActsAtLeast(id, 1); got != 0 {
		t.Fatalf("after reset, RowsWithActsAtLeast(1) = %d", got)
	}
}

func TestActivateOpensRow(t *testing.T) {
	s := MustNew(testConfig())
	id := BankID{}
	s.Activate(id, 42, 0)
	if s.BankState(id).OpenRow != 42 {
		t.Fatalf("OpenRow = %d, want 42", s.BankState(id).OpenRow)
	}
}

type recordingListener struct {
	events []struct {
		id  BankID
		row int
		now int64
	}
}

func (r *recordingListener) OnActivate(id BankID, row int, now int64) {
	r.events = append(r.events, struct {
		id  BankID
		row int
		now int64
	}{id, row, now})
}

func TestSubscribeNotifiesActivations(t *testing.T) {
	s := MustNew(testConfig())
	l := &recordingListener{}
	s.Subscribe(l)
	id := BankID{Channel: 1, Bank: 2}
	s.Activate(id, 11, 99)
	if len(l.events) != 1 {
		t.Fatalf("got %d events, want 1", len(l.events))
	}
	e := l.events[0]
	if e.id != id || e.row != 11 || e.now != 99 {
		t.Fatalf("unexpected event %+v", e)
	}
}

func TestRowContentIdentityDefault(t *testing.T) {
	s := MustNew(testConfig())
	a := BankID{Channel: 1, Rank: 0, Bank: 5}
	b := BankID{Channel: 0, Rank: 0, Bank: 5}
	if s.RowContent(a, 10) == s.RowContent(b, 10) {
		t.Fatal("identity tags must differ across banks")
	}
	if s.RowContent(a, 10) == s.RowContent(a, 11) {
		t.Fatal("identity tags must differ across rows")
	}
}

func TestSwapRowsMovesContent(t *testing.T) {
	s := MustNew(testConfig())
	id := BankID{Bank: 1}
	s.SetRowContent(id, 5, 0xAAAA)
	s.SetRowContent(id, 9, 0xBBBB)
	s.SwapRows(id, 5, 9, 0)
	if got := s.RowContent(id, 5); got != 0xBBBB {
		t.Fatalf("row 5 content = %#x, want 0xBBBB", got)
	}
	if got := s.RowContent(id, 9); got != 0xAAAA {
		t.Fatalf("row 9 content = %#x, want 0xAAAA", got)
	}
}

func TestSwapRowsWithUntouchedRows(t *testing.T) {
	s := MustNew(testConfig())
	id := BankID{Bank: 2}
	want5, want9 := s.RowContent(id, 5), s.RowContent(id, 9)
	s.SwapRows(id, 5, 9, 0)
	if s.RowContent(id, 5) != want9 || s.RowContent(id, 9) != want5 {
		t.Fatal("identity tags did not swap")
	}
}

func TestSwapRowsActivatesBothRowsTwice(t *testing.T) {
	s := MustNew(testConfig())
	id := BankID{}
	s.SwapRows(id, 3, 4, 0)
	if got := s.ActCount(id, 3); got != 2 {
		t.Fatalf("row 3 activations = %d, want 2", got)
	}
	if got := s.ActCount(id, 4); got != 2 {
		t.Fatalf("row 4 activations = %d, want 2", got)
	}
}

func TestSwapRowsClosesRowBuffer(t *testing.T) {
	s := MustNew(testConfig())
	id := BankID{}
	s.Activate(id, 7, 0)
	s.SwapRows(id, 3, 4, 1)
	if s.BankState(id).OpenRow != NoRow {
		t.Fatalf("row buffer open (%d) after swap", s.BankState(id).OpenRow)
	}
}

func TestSkipRefresh(t *testing.T) {
	cfg := testConfig()
	s := MustNew(cfg)
	trfc, trefi := int64(cfg.TRFC), int64(cfg.TREFI)
	// Time inside the refresh window is pushed to its end.
	if got := s.SkipRefresh(0); got != trfc {
		t.Fatalf("SkipRefresh(0) = %d, want %d", got, trfc)
	}
	if got := s.SkipRefresh(trfc + 1); got != trfc+1 {
		t.Fatalf("SkipRefresh outside window moved: %d", got)
	}
	if got := s.SkipRefresh(trefi + 2); got != trefi+trfc {
		t.Fatalf("SkipRefresh in second window = %d, want %d", got, trefi+trfc)
	}
}

func TestReserveBusSerializes(t *testing.T) {
	cfg := testConfig()
	s := MustNew(cfg)
	t0 := s.ReserveBus(0, 100)
	t1 := s.ReserveBus(0, 100)
	if t0 != 100 {
		t.Fatalf("first reservation at %d, want 100", t0)
	}
	if t1 != 100+int64(cfg.TBurst) {
		t.Fatalf("second reservation at %d, want %d", t1, 100+int64(cfg.TBurst))
	}
	// Different channel unaffected.
	if got := s.ReserveBus(1, 100); got != 100 {
		t.Fatalf("other channel reservation at %d, want 100", got)
	}
}

func TestBlockChannelMonotone(t *testing.T) {
	s := MustNew(testConfig())
	s.BlockChannel(0, 500)
	s.BlockChannel(0, 300) // must not shrink
	if got := s.ChannelBlockedUntil(0); got != 500 {
		t.Fatalf("blocked until %d, want 500", got)
	}
	if got := s.ChannelBlockedUntil(1); got != 0 {
		t.Fatalf("channel 1 blocked until %d, want 0", got)
	}
}

func TestEachBankVisitsAll(t *testing.T) {
	cfg := testConfig()
	s := MustNew(cfg)
	seen := map[BankID]bool{}
	s.EachBank(func(id BankID, b *Bank) {
		if b == nil {
			t.Fatal("nil bank state")
		}
		seen[id] = true
	})
	if len(seen) != cfg.Channels*cfg.Ranks*cfg.Banks {
		t.Fatalf("visited %d banks, want %d", len(seen), cfg.Channels*cfg.Ranks*cfg.Banks)
	}
}

func TestBankIDString(t *testing.T) {
	id := BankID{Channel: 1, Rank: 0, Bank: 7}
	if got := id.String(); got != "ch1.rk0.bk7" {
		t.Fatalf("String() = %q", got)
	}
}
