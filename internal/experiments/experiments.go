// Package experiments regenerates every table and figure of the RRS
// paper's evaluation. Each experiment returns a formatted text table whose
// rows match the paper's, plus structured results for tests and the
// benchmark harness. EXPERIMENTS.md records paper-vs-measured values.
//
// Performance experiments run at a reduced scale (Scale, default 16): the
// refresh epoch, Row Hammer threshold and swap-operation cost all shrink
// by the same factor, which preserves the quantities the results are made
// of — tracker capacity (ACT_max/T_RRS), per-epoch hot-row capacity, and
// the fraction of an epoch spent on swaps — while cutting simulation time
// by the same factor.
package experiments

import (
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
	"repro/internal/sim"
	"repro/internal/trace"
)

// Scale holds the common knobs for the simulation-backed experiments.
type Scale struct {
	// Factor divides the epoch, T_RH and swap cost (16 => 4 ms epochs).
	Factor int
	// Epochs is the simulated duration per run, in (scaled) epochs.
	Epochs int
	// Seed drives the synthetic traces.
	Seed uint64
	// Workloads optionally restricts the workload set (nil = Table 3's
	// 28 detailed workloads).
	Workloads []trace.Workload
}

// DefaultScale returns the standard experiment scale: 1/16 epochs
// (4 ms), two epochs per run.
func DefaultScale() Scale {
	return Scale{Factor: 16, Epochs: 2, Seed: 0xEC0}
}

// Config returns the scaled system configuration.
func (s Scale) Config() config.Config {
	f := s.Factor
	if f < 1 {
		f = 1
	}
	return config.Default().Scaled(f)
}

// workloads returns the experiment's workload list.
func (s Scale) workloads() []trace.Workload {
	if len(s.Workloads) > 0 {
		return s.Workloads
	}
	return trace.Table3Workloads()
}

// options builds sim options for one workload at this scale.
func (s Scale) options(w trace.Workload) sim.Options {
	cfg := s.Config()
	epochs := s.Epochs
	if epochs < 1 {
		epochs = 1
	}
	return sim.Options{
		Config:              cfg,
		Workloads:           []trace.Workload{w},
		InstructionsPerCore: 1 << 62, // time-bounded, not instruction-bounded
		CycleLimit:          int64(epochs) * cfg.EpochCycles,
		Seed:                s.Seed,
	}
}

// RRSFactory builds an RRS mitigation with the swap cost scaled to match
// the shrunken epoch.
func (s Scale) RRSFactory() func(*dram.System) memctrl.Mitigation {
	return func(sys *dram.System) memctrl.Mitigation {
		r, err := core.New(sys, core.ScaledParams(sys.Config()))
		if err != nil {
			panic(err)
		}
		return r
	}
}

// BlockHammerFactory builds the BlockHammer baseline with a blacklist
// threshold scaled like T_RH (the paper evaluates N_BL of 512 and 1K at
// T_RH = 4.8K).
func (s Scale) BlockHammerFactory(blacklist uint32) func(*dram.System) memctrl.Mitigation {
	factor := uint32(s.Factor)
	if factor < 1 {
		factor = 1
	}
	return func(sys *dram.System) memctrl.Mitigation {
		p := mitigation.DefaultBlockHammerParams()
		p.BlacklistThreshold = max(1, blacklist/factor)
		return mitigation.NewBlockHammer(sys, p)
	}
}
