package mitigation

import (
	"testing"

	"repro/internal/dram"
)

// TestZooHotPathAllocFree pins the 0 allocs/op contract for the zoo
// defenses' per-activation paths (the same discipline make alloc-check
// enforces for the tracker and DRAM packages). The loops cross tREFI
// windows, so the pins cover the refresh/service paths too — refreshPair
// is non-variadic and the PrIDE ring is a fixed array precisely so these
// hold.
func TestZooHotPathAllocFree(t *testing.T) {
	cfg := testConfig()
	id := dram.BankID{}

	t.Run("MINT", func(t *testing.T) {
		sys := dram.MustNew(cfg)
		m := NewMINT(sys, 1)
		now := int64(0)
		step := int64(cfg.TRC)
		// Warm-up: materialize DRAM's dense per-bank state.
		for i := 0; i < 400; i++ {
			m.OnActivate(id, 100+i%8, 100+i%8, now)
			now += step
		}
		if avg := testing.AllocsPerRun(2000, func() {
			m.OnActivate(id, 100, 100, now)
			now += step
		}); avg != 0 {
			t.Fatalf("MINT.OnActivate allocates %.2f allocs/op, want 0", avg)
		}
	})

	t.Run("PrIDE", func(t *testing.T) {
		sys := dram.MustNew(cfg)
		q := NewPrIDE(sys, 1.0, 1) // p=1: every op exercises the queue
		now := int64(0)
		step := int64(cfg.TRC)
		for i := 0; i < 400; i++ {
			q.OnActivate(id, 100+i%8, 100+i%8, now)
			now += step
		}
		if avg := testing.AllocsPerRun(2000, func() {
			q.OnActivate(id, 100, 100, now)
			now += step
		}); avg != 0 {
			t.Fatalf("PrIDE.OnActivate allocates %.2f allocs/op, want 0", avg)
		}
	})

	t.Run("DAPPER", func(t *testing.T) {
		sys := dram.MustNew(cfg)
		d := NewDAPPER(sys, 1.0, 1)
		now := int64(0)
		step := int64(cfg.TRC)
		for i := 0; i < 400; i++ {
			d.OnActivate(id, 100+i%8, 100+i%8, now)
			now += step
		}
		if avg := testing.AllocsPerRun(2000, func() {
			d.OnActivate(id, 100, 100, now)
			now += step
		}); avg != 0 {
			t.Fatalf("DAPPER.OnActivate allocates %.2f allocs/op, want 0", avg)
		}
	})
}
