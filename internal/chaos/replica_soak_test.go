package chaos

import (
	"bytes"
	"context"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/fleet"
	"repro/internal/resilience"
	"repro/internal/service"
)

// fleetGauge reads one node's gauge by name.
func fleetGauge(n *fleetNode, name string) float64 {
	return n.mgr.Metrics().JSON().Gauges[name]
}

// waitSoak polls cond until it holds or ctx expires.
func waitSoak(t *testing.T, ctx context.Context, what string, cond func() bool) {
	t.Helper()
	for !cond() {
		select {
		case <-ctx.Done():
			t.Fatalf("timed out waiting for %s", what)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestFleetReplicaDurability is the durable-fleet soak: a sweep of real
// simulations through three members with result replication on, then
// kill -9 of a node that owns completed results. The killed node's
// results must be served from its successor's replica — zero
// re-executions anywhere, bit-identical to the plain-engine reference.
// Finally a replacement node joins with `-join` semantics (roster of
// itself plus one gossip seed) and is routed work without any survivor
// restarting.
func TestFleetReplicaDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	sweep, budget := uint64(6), 150*time.Second
	if raceEnabled {
		sweep, budget = 4, 8*time.Minute
	}
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()

	// Plain-engine references: whatever node (or cache) answers, the
	// bytes must match these.
	ref := make(map[uint64][]byte, sweep)
	for seed := uint64(1); seed <= sweep; seed++ {
		res, err := service.RunSpec(ctx, fleetSpec(seed), nil)
		if err != nil {
			t.Fatalf("reference seed %d: %v", seed, err)
		}
		res.Timeline = nil
		ref[seed] = mustJSON(t, res)
	}

	dir := t.TempDir()
	roster := []fleet.Peer{
		{ID: "n1", URL: "http://n1.rrs-fleet.invalid"},
		{ID: "n2", URL: "http://n2.rrs-fleet.invalid"},
		{ID: "n3", URL: "http://n3.rrs-fleet.invalid"},
	}
	hm := newHostmap()
	// Replication on (the default), with the anti-entropy loop fast
	// enough to observe within the soak.
	fastRepair := func(o *fleet.Options) {
		o.RepairInterval = 500 * time.Millisecond
	}
	nodes := make([]*fleetNode, len(roster))
	for i, p := range roster {
		nodes[i] = bootFleetNode(t, hm, roster, p,
			filepath.Join(dir, p.ID+".journal"), fastRepair)
	}

	client := func(p fleet.Peer) *service.Client {
		c := service.NewClient(p.URL,
			service.WithHTTPClient(&http.Client{Transport: hm}),
			service.WithRetryPolicy(resilience.Policy{
				MaxAttempts: -1,
				BaseDelay:   2 * time.Millisecond,
				MaxDelay:    100 * time.Millisecond,
			}))
		c.PollInterval = 10 * time.Millisecond
		return c
	}

	// Complete the sweep across all three entry nodes.
	for seed := uint64(1); seed <= sweep; seed++ {
		res, err := client(roster[int(seed)%len(roster)]).Run(ctx, fleetSpec(seed))
		if err != nil {
			t.Fatalf("sweep seed %d: %v", seed, err)
		}
		if !bytes.Equal(mustJSON(t, res), ref[seed]) {
			t.Fatalf("seed %d diverged from reference pre-crash", seed)
		}
	}

	// Every completed result must drain out of the replication queues
	// onto its successor before the crash window opens.
	waitSoak(t, ctx, "replication to settle", func() bool {
		var replicated int64
		for _, n := range nodes {
			if fleetGauge(n, "rrs_fleet_replica_lag") != 0 {
				return false
			}
			replicated += fleetCounter(n, "rrs_fleet_replicated_total")
		}
		return replicated >= int64(sweep)
	})

	// The victim: seed 1's ring owner — it computed and holds that
	// result. Its successor (the ring owner once the victim is removed;
	// rendezvous removal only promotes) must already hold the replica.
	spec1 := fleetSpec(1)
	ownerPeer, _ := fleet.Owner(spec1.Hash(), roster)
	victim := -1
	for i, p := range roster {
		if p.ID == ownerPeer.ID {
			victim = i
		}
	}
	var rest []fleet.Peer
	var survivors []*fleetNode
	for i, p := range roster {
		if i != victim {
			rest = append(rest, p)
			survivors = append(survivors, nodes[i])
		}
	}
	holderPeer, _ := fleet.Owner(spec1.Hash(), rest)
	var holder *fleetNode
	for _, n := range survivors {
		if n.self.ID == holderPeer.ID {
			holder = n
		}
	}
	if _, ok := holder.mgr.CachedResult(spec1.Hash()); !ok {
		t.Fatalf("successor %s holds no replica of seed 1 before the kill", holderPeer.ID)
	}

	// Snapshot engine-invocation counters: after the kill, serving seed
	// 1 again must not move them anywhere.
	runsBefore := make(map[string]int64, len(survivors))
	for _, n := range survivors {
		runsBefore[n.self.ID] = fleetCounter(n, "rrs_runs_started_total")
	}

	nodes[victim].kill(t, hm)
	waitSoak(t, ctx, "survivors to evict the victim", func() bool {
		for _, n := range survivors {
			if fleetCounter(n, "rrs_fleet_peer_flaps_total") == 0 {
				return false
			}
		}
		return true
	})

	// The payoff: resubmitting the dead node's spec is answered from the
	// successor's replica — a cache hit, not a re-simulation.
	entry := client(survivors[0].self)
	v, err := entry.Submit(ctx, spec1)
	if err != nil {
		t.Fatalf("resubmit after kill: %v", err)
	}
	if !v.CacheHit {
		t.Errorf("resubmitted seed 1 was not a cache hit (job %s)", v.ID)
	}
	res1, err := entry.Result(ctx, v.ID)
	if err != nil {
		t.Fatalf("resubmitted result: %v", err)
	}
	if !bytes.Equal(mustJSON(t, res1), ref[1]) {
		t.Errorf("post-kill seed 1 diverged from reference\n fleet: %s\n   ref: %s",
			mustJSON(t, res1), ref[1])
	}
	for _, n := range survivors {
		if got := fleetCounter(n, "rrs_runs_started_total"); got != runsBefore[n.self.ID] {
			t.Errorf("%s re-ran work after the kill: runs %d -> %d",
				n.self.ID, runsBefore[n.self.ID], got)
		}
	}
	var received int64
	for _, n := range survivors {
		received += fleetCounter(n, "rrs_fleet_replicas_received_total")
	}
	if received == 0 {
		t.Error("no survivor ever received a replica")
	}

	// Node replacement, the dynamic-membership way: n4 boots knowing
	// only itself, gossips through one survivor, and is routed work —
	// no survivor restarted, no roster flag redeployed.
	n4self := fleet.Peer{ID: "n4", URL: "http://n4.rrs-fleet.invalid"}
	n4 := bootFleetNode(t, hm, []fleet.Peer{n4self}, n4self,
		filepath.Join(dir, "n4.journal"), fastRepair)
	defer n4.stop(t)
	for _, n := range survivors {
		defer n.stop(t)
	}
	if err := n4.node.Join(ctx, []string{survivors[0].self.URL}); err != nil {
		t.Fatalf("n4 join: %v", err)
	}
	waitSoak(t, ctx, "survivors to admit n4", func() bool {
		for _, n := range survivors {
			found := false
			for _, m := range n.node.Members() {
				if m.Peer.ID == "n4" && !m.Left {
					found = true
				}
			}
			if !found {
				return false
			}
		}
		return true
	})

	// A spec the grown live ring assigns to n4, submitted via a
	// survivor, must be homed and run there, matching a fresh reference.
	live := append(append([]fleet.Peer(nil), rest...), n4self)
	var joinSpec service.Spec
	for seed := uint64(200); seed < 1200; seed++ {
		s := fleetSpec(seed)
		if owner, _ := fleet.Owner(s.Hash(), live); owner.ID == "n4" {
			joinSpec = s
			break
		}
	}
	if joinSpec.Seed == 0 {
		t.Fatal("no seed in [200,1200) owned by n4")
	}
	refJoin, err := service.RunSpec(ctx, joinSpec, nil)
	if err != nil {
		t.Fatalf("reference for join spec: %v", err)
	}
	refJoin.Timeline = nil
	vj, err := entry.Submit(ctx, joinSpec)
	if err != nil {
		t.Fatalf("submit join spec: %v", err)
	}
	if !strings.HasPrefix(vj.ID, "n4.") {
		t.Errorf("join spec homed on %q, want the joined node n4", vj.ID)
	}
	resJoin, err := entry.Result(ctx, vj.ID)
	if err != nil {
		t.Fatalf("join spec result: %v", err)
	}
	if !bytes.Equal(mustJSON(t, resJoin), mustJSON(t, refJoin)) {
		t.Error("join spec result diverged from reference")
	}

	// The anti-entropy loop keeps verifying the K-copy invariant on the
	// churned ring (and re-replicates what the dead victim was holding).
	waitSoak(t, ctx, "repair activity", func() bool {
		var checks int64
		for _, n := range survivors {
			checks += fleetCounter(n, "rrs_fleet_repair_checks_total")
		}
		return checks > 0
	})
	t.Logf("replicated=%d received=%d repair_checks=%d+%d",
		fleetCounter(survivors[0], "rrs_fleet_replicated_total")+
			fleetCounter(survivors[1], "rrs_fleet_replicated_total"),
		received,
		fleetCounter(survivors[0], "rrs_fleet_repair_checks_total"),
		fleetCounter(survivors[1], "rrs_fleet_repair_checks_total"))
}
