package sim

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// eventsRun executes the standard seeded RRS case, optionally with the
// observability layer attached.
func eventsRun(t *testing.T, events *obs.Config) Result {
	t.Helper()
	w, ok := trace.ByName("hmmer")
	if !ok {
		t.Fatal("unknown workload hmmer")
	}
	cfg := testConfig()
	res, err := Run(Options{
		Config:              cfg,
		Workloads:           []trace.Workload{w},
		InstructionsPerCore: 1 << 62,
		CycleLimit:          cfg.EpochCycles,
		Seed:                3,
		Mitigation:          rrsFactory,
		Events:              events,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestEventsOnBitIdenticalStats is the zero-interference contract: a run
// with the recorder attached produces bit-identical statistics to the
// same run without it — the recorder only observes. This is what lets
// the job service enable histogram collection on every production run
// without invalidating its content-addressed result cache.
func TestEventsOnBitIdenticalStats(t *testing.T) {
	off := eventsRun(t, nil)
	on := eventsRun(t, &obs.Config{})
	if on.Timeline == nil {
		t.Fatal("events-on run has no Timeline")
	}
	if off.Timeline != nil {
		t.Fatal("events-off run has a Timeline")
	}
	on.Timeline = nil
	off.Mitigation, on.Mitigation = nil, nil
	off.Invariants, on.Invariants = nil, nil
	if !reflect.DeepEqual(off, on) {
		offJSON, _ := json.MarshalIndent(off, "", "  ")
		onJSON, _ := json.MarshalIndent(on, "", "  ")
		t.Errorf("stats diverge with events on\noff: %s\non:  %s", offJSON, onJSON)
	}
}

// TestEventsTimelineShape sanity-checks the recording of a seeded RRS
// epoch: swaps appear in the event stream, the histograms the hooks feed
// are populated, and the epoch boundary produced a sample consistent
// with the run's stats.
func TestEventsTimelineShape(t *testing.T) {
	res := eventsRun(t, &obs.Config{})
	tl := res.Timeline
	if tl.TotalEvents == 0 || len(tl.Events) == 0 {
		t.Fatal("no events recorded for an RRS attack epoch")
	}
	kinds := map[obs.Kind]int{}
	for _, e := range tl.Events {
		kinds[e.Kind]++
	}
	for _, k := range []obs.Kind{obs.KindSwap, obs.KindChannelBlocked, obs.KindRITInstall,
		obs.KindHRTInsert, obs.KindHRTCross, obs.KindEpoch} {
		if kinds[k] == 0 {
			t.Errorf("no %v events recorded (have %v)", k, kinds)
		}
	}
	for _, name := range []string{"swap_block_cycles", "access_cycles", "rit_occupancy", "hrt_occupancy"} {
		if tl.Histograms[name].Count == 0 {
			t.Errorf("histogram %s saw no samples", name)
		}
	}
	if len(tl.Samples) == 0 {
		t.Fatal("no epoch samples recorded")
	}
	// The boundary sample's swap count is the epoch's swap total, which
	// for this single-epoch run is the result's per-epoch average.
	if got, want := float64(tl.Samples[0].Swaps), res.SwapsPerEpoch; got != want {
		t.Errorf("epoch sample says %v swaps, result says %v", got, want)
	}
}

// TestGoldenEventStream pins the exact event stream of a seeded run with
// a small ring (the newest 256 events of the epoch), the same way
// golden_stats.json pins the statistics: the timeline is a pure function
// of (config, workload, seed), so any drift means the engine's observed
// behavior changed. Regenerate with
//
//	go test ./internal/sim -run TestGoldenEventStream -update
//
// only for an intentional behavioral change, and say so in the commit.
func TestGoldenEventStream(t *testing.T) {
	res := eventsRun(t, &obs.Config{RingSize: 256})
	got := res.Timeline
	path := filepath.Join("testdata", "golden_events.json")

	if *updateGolden {
		out, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d events", path, len(got.Events))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden events (run with -update to create them): %v", err)
	}
	var want obs.Timeline
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, want) {
		gotJSON, _ := json.MarshalIndent(got, "", "  ")
		t.Errorf("event stream diverges from golden (regenerate with -update if intentional)\ngot: %s", gotJSON)
	}
}
