package experiments

import (
	"repro/internal/attack"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/mitigation"
)

// mitigationFactory builds a defense over a fresh DRAM system.
type mitigationFactory = func(*dram.System) memctrl.Mitigation

// attackScaleConfig is the scaled system the attack experiments run on:
// 2400 activations per epoch with T_RH = 240, preserving the full-scale
// proportion between swap-transfer disturbance and the flip budget
// (ACT_max scales with T_RH squared; see the attack package tests).
func attackScaleConfig() config.Config {
	cfg := config.Default()
	cfg.RowsPerBank = 4 << 10
	cfg.EpochCycles = int64(cfg.TRC) * 2400
	cfg.RowHammerThreshold = 240
	return cfg
}

// idealFactory builds the idealized victim-focused mitigation.
func idealFactory(sys *dram.System) memctrl.Mitigation {
	return mitigation.NewIdeal(sys,
		mitigation.DefaultGrapheneThreshold(sys.Config().RowHammerThreshold))
}

// grapheneFactory builds the tracker+victim-refresh mitigation.
func grapheneFactory(sys *dram.System) memctrl.Mitigation {
	return mitigation.NewGraphene(sys,
		mitigation.DefaultGrapheneThreshold(sys.Config().RowHammerThreshold), 1, 7)
}

// attackRRSFactory builds RRS for the attack experiments.
func attackRRSFactory(sys *dram.System) memctrl.Mitigation {
	r, err := core.New(sys, core.DefaultParams(sys.Config()))
	if err != nil {
		panic(err)
	}
	return r
}

// attackBlockHammerFactory builds BlockHammer scaled to the attack config.
func attackBlockHammerFactory(sys *dram.System) memctrl.Mitigation {
	p := mitigation.DefaultBlockHammerParams()
	p.BlacklistThreshold = 60
	return mitigation.NewBlockHammer(sys, p)
}

// noFactory is the unprotected baseline.
func noFactory(*dram.System) memctrl.Mitigation { return nil }

// runAttack is the shared fixture for attack-backed experiments.
func runAttack(mit mitigationFactory, p attack.Pattern, epochs int) attack.Result {
	cfg := attackScaleConfig()
	ctl, fm := attack.NewSystem(cfg, 0, attack.Alpha2For(cfg), mit)
	return attack.Run(ctl, fm, p, attack.Options{Epochs: epochs})
}
