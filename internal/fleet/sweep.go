package fleet

import (
	"context"
	"errors"
	"net/http"

	"repro/internal/service"
	"repro/internal/sim"
)

// Sweep children and the fleet.
//
// A sweep parent lives on the node that accepted it (its id carries
// that node's prefix, and the journal that resumes it after a crash is
// that node's). The children are where the fleet comes in: each child
// job is content-addressed, so instead of running every child on the
// accepting node, Options.RunChild ranks the child's own hash over the
// live ring and hands it to its owner — the same placement a client
// POSTing the spec directly would get. One sweep therefore spreads
// across the fleet, each child lands where its result will be cached
// and replicated, and a resubmitted sweep finds every child's result
// already owned by a live node.

// childRun is the service.Options.RunChild hook: route one expanded
// sweep child to its ring owner. Self-owned children run through the
// normal local path (local — the fan-out-wrapped executor — so even
// they check the fleet cache first). Remote owners get the child via
// their internal API, walking the failover order like a forwarded
// submission; if every remote candidate fails, the child runs locally —
// a lone survivor still finishes its sweeps.
func (n *Node) childRun(local service.RunFunc) service.RunFunc {
	return func(ctx context.Context, spec service.Spec, progress func(done, total int64)) (sim.Result, error) {
		first := true
		for _, p := range rank(spec.Hash(), n.liveSet()) {
			if p.ID == n.self.ID {
				break // we own this child; run it here
			}
			if !first {
				n.met.Inc("rrs_fleet_sweep_child_failovers_total", 1)
			}
			first = false
			res, err := n.clientFor(p).Run(ctx, spec)
			if err == nil {
				n.met.Inc("rrs_fleet_sweep_children_routed_total", 1)
				if progress != nil {
					progress(1, 1)
				}
				return res, nil
			}
			var apiErr *service.APIError
			if errors.As(err, &apiErr) && !apiErr.Transient() &&
				apiErr.Status != http.StatusNotFound {
				// A permanent verdict from the owner (the child failed or
				// was refused); rerouting would only repeat it.
				return sim.Result{}, err
			}
			if ctx.Err() != nil {
				return sim.Result{}, ctx.Err()
			}
			// Transient failure after retries: fail over to the next
			// candidate now; the detector catches up within a probe round.
		}
		n.met.Inc("rrs_fleet_sweep_children_local_total", 1)
		return local(ctx, spec, progress)
	}
}

// handleResultByHash answers GET /v1/results/{hash} fleet-wide: the
// local result store first, then the routable peers' caches. This is
// the lookup the client's lost-job recovery leans on — after an owner
// dies, the result usually survives on its successor's replica, and
// answering from there keeps failover from re-queueing finished work.
func (n *Node) handleResultByHash(w http.ResponseWriter, r *http.Request) {
	hash := r.PathValue("hash")
	if res, ok := n.mgr.ResultByHash(hash); ok {
		service.WriteJSON(w, http.StatusOK, service.ResultEnvelope{
			Hash: hash, CacheHit: true, Result: res,
		})
		return
	}
	if res, ok := n.peerCached(r.Context(), hash); ok {
		n.met.Inc("rrs_fleet_cache_fanout_hits_total", 1)
		service.WriteJSON(w, http.StatusOK, service.ResultEnvelope{
			Hash: hash, CacheHit: true, Result: res,
		})
		return
	}
	service.WriteError(w, http.StatusNotFound,
		errors.New("no result for hash "+hash+" anywhere in the fleet"))
}
