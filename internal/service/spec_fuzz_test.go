package service

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// decodeSpec mirrors handleSubmit's decode path (strict fields), so the
// fuzzer exercises exactly what a hostile POST body reaches.
func decodeSpec(raw []byte) (Spec, error) {
	var spec Spec
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	err := dec.Decode(&spec)
	return spec, err
}

// FuzzSpecDecode asserts the submission path is total: any byte string
// either fails to decode with an error or yields a Spec whose
// Normalize, Hash and Validate all return without panicking, and whose
// hash is a fixed point (normalizing again cannot change the identity
// the cache and journal key on).
func FuzzSpecDecode(f *testing.F) {
	seeds := []string{
		`{"workloads":["bzip2"]}`,
		`{"workloads":["bzip2","mcf"],"mitigation":"rrs","scale":16,"epochs":2,"seed":7}`,
		`{"workloads":[],"mitigation":"blockhammer","blacklist":12}`,
		`{"workloads":["bzip2"],"scale":-3,"epochs":-1,"instructions_per_core":-9}`,
		`{"workloads":["bzip2"],"row_hammer_threshold":1,"hot_row_threshold":-2,"hot_share":1e308}`,
		`{"workloads":`,
		`{"workloads":["bzip2"],"unknown_field":1}`,
		`null`, `0`, `""`, `[]`, `{}`,
		"{\"workloads\":[\"\\u0000\"]}",
		`{"seed":18446744073709551615}`,
		`{"seed":-1}`,
		`{"timeout_seconds":"NaN"}`,
		strings.Repeat(`{"workloads":`, 64),
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		spec, err := decodeSpec(raw)
		if err != nil {
			return // rejection is an acceptable outcome; panicking is not
		}
		n := spec.Normalize()
		h1 := spec.Hash()
		if h2 := n.Hash(); h1 != h2 {
			t.Fatalf("hash not a fixed point of Normalize: %s vs %s", h1, h2)
		}
		if len(h1) != 64 {
			t.Fatalf("hash %q is not hex SHA-256", h1)
		}
		_ = spec.Validate() // must classify, not crash
	})
}

func TestSpecDecodeHostileInputsNeverPanic(t *testing.T) {
	cases := []string{
		``, `{`, `}`, `[]`, `null`, `true`, `42`,
		`{"workloads": "bzip2"}`,                               // wrong type
		`{"workloads": [1, 2]}`,                                // wrong element type
		`{"scale": 1e999}`,                                     // float overflow
		`{"seed": 1.5}`,                                        // fractional uint
		`{"mitigation": {"nested": "object"}}`,                 // wrong type
		`{"workloads":["bzip2"]} trailing`,                     // trailing garbage is fine for Decode
		strings.Repeat(`[`, 10_000),                            // deep nesting
		`{"workloads":["` + strings.Repeat("a", 1<<16) + `"]}`, // long name
	}
	for _, raw := range cases {
		spec, err := decodeSpec([]byte(raw))
		if err != nil {
			continue
		}
		// Decoded specs must survive the full pipeline.
		_ = spec.Normalize()
		_ = spec.Hash()
		_ = spec.Validate()
	}
}

func TestSpecHashIgnoresFieldOrderAndSpelledDefaults(t *testing.T) {
	// The same job written three ways: minimal, defaults spelled out, and
	// a different key order. The cache and the submit-coalescing map key
	// on the hash, so these must collide.
	bodies := []string{
		`{"workloads":["bzip2"],"seed":3,"scale":16,"epochs":1}`,
		`{"epochs":1,"seed":3,"workloads":["bzip2"],"scale":16}`,
		`{"workloads":["bzip2"],"mitigation":"none","scale":16,"epochs":1,"seed":3,
		  "instructions_per_core":4611686018427387904}`,
		// TimeoutSeconds is result-neutral and must not split the cache.
		`{"workloads":["bzip2"],"seed":3,"scale":16,"epochs":1,"timeout_seconds":9.5}`,
	}
	var want string
	for i, raw := range bodies {
		spec, err := decodeSpec([]byte(raw))
		if err != nil {
			t.Fatalf("body %d: %v", i, err)
		}
		h := spec.Hash()
		if i == 0 {
			want = h
			continue
		}
		if h != want {
			t.Errorf("body %d hashed %s, body 0 hashed %s; same job must share a hash", i, h, want)
		}
	}

	// And a genuinely different job must not collide.
	other, err := decodeSpec([]byte(`{"workloads":["bzip2"],"seed":4,"scale":16,"epochs":1}`))
	if err != nil {
		t.Fatal(err)
	}
	if other.Hash() == want {
		t.Error("distinct seeds collided")
	}
}
