package service

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

// newTestServer wires a stubbed manager behind httptest.
func newTestServer(t *testing.T, opts Options,
	fn func(ctx context.Context, spec Spec, progress func(done, total int64)) (sim.Result, error)) (*httptest.Server, *Manager) {
	t.Helper()
	m := stubManager(t, opts, fn)
	srv := httptest.NewServer(Handler(m))
	t.Cleanup(srv.Close)
	return srv, m
}

func instantRun(_ context.Context, spec Spec, progress func(int64, int64)) (sim.Result, error) {
	progress(1, 1)
	return sim.Result{IPC: float64(spec.Seed), Instructions: 42}, nil
}

func TestHandlerTable(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1}, instantRun)

	cases := []struct {
		name       string
		method     string
		path       string
		body       string
		wantStatus int
		wantSubstr string
	}{
		{"health", http.MethodGet, "/healthz", "", http.StatusOK, `"status": "ok"`},
		{"submit ok", http.MethodPost, "/v1/jobs",
			`{"workloads":["bzip2"],"mitigation":"rrs","scale":16,"epochs":1,"seed":9}`,
			http.StatusCreated, `"state": "queued"`},
		{"submit bad json", http.MethodPost, "/v1/jobs", `{"workloads":`,
			http.StatusBadRequest, "decoding spec"},
		{"submit unknown field", http.MethodPost, "/v1/jobs", `{"wrklds":["bzip2"]}`,
			http.StatusBadRequest, "unknown field"},
		{"submit unknown workload", http.MethodPost, "/v1/jobs", `{"workloads":["doom"]}`,
			http.StatusBadRequest, "unknown workload"},
		{"submit unknown mitigation", http.MethodPost, "/v1/jobs",
			`{"workloads":["bzip2"],"mitigation":"tape"}`,
			http.StatusBadRequest, "unknown mitigation"},
		{"get missing", http.MethodGet, "/v1/jobs/job-999999", "",
			http.StatusNotFound, "no such job"},
		{"result missing", http.MethodGet, "/v1/jobs/job-999999/result", "",
			http.StatusNotFound, "no such job"},
		{"delete missing", http.MethodDelete, "/v1/jobs/job-999999", "",
			http.StatusNotFound, "no such job"},
		{"list", http.MethodGet, "/v1/jobs", "", http.StatusOK, `"jobs"`},
		{"metrics prometheus", http.MethodGet, "/metrics", "",
			http.StatusOK, "# TYPE rrs_jobs_submitted_total counter"},
		{"metrics json", http.MethodGet, "/metrics?format=json", "",
			http.StatusOK, `"counters"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, srv.URL+tc.path,
				strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := srv.Client().Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			raw, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			body := string(raw)
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status = %d, want %d; body: %s",
					resp.StatusCode, tc.wantStatus, body)
			}
			if !strings.Contains(body, tc.wantSubstr) {
				t.Errorf("body missing %q:\n%s", tc.wantSubstr, body)
			}
		})
	}
}

func TestJobLifecycleOverHTTP(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1}, instantRun)
	client := NewClient(srv.URL)
	client.PollInterval = 5 * time.Millisecond
	ctx := context.Background()

	if err := client.Health(ctx); err != nil {
		t.Fatal(err)
	}
	spec := Spec{Workloads: []string{"bzip2"}, Mitigation: MitRRS, Scale: 16, Epochs: 1, Seed: 5}
	v, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.Hash != spec.Hash() {
		t.Fatalf("submit view = %+v", v)
	}
	res, err := client.Result(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res.IPC != 5 || res.Instructions != 42 {
		t.Fatalf("result = %+v", res)
	}

	// Resubmission: answered from cache over the wire.
	v2, err := client.Submit(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !v2.CacheHit || v2.State != StateDone {
		t.Fatalf("resubmission = %+v, want instant cache hit", v2)
	}
	res2, err := client.Result(ctx, v2.ID)
	if err != nil {
		t.Fatal(err)
	}
	if res2.IPC != res.IPC {
		t.Error("cached result differs over HTTP")
	}

	// The job listing shows both, newest last.
	jv, err := client.Job(ctx, v.ID)
	if err != nil {
		t.Fatal(err)
	}
	if jv.State != StateDone || jv.RunSeconds < 0 {
		t.Fatalf("job view = %+v", jv)
	}

	// DELETE on a finished job retires the record.
	if err := client.Cancel(ctx, v.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Job(ctx, v.ID); err == nil {
		t.Error("deleted job still listed")
	}
}

func TestCancelOverHTTP(t *testing.T) {
	started := make(chan struct{})
	srv, _ := newTestServer(t, Options{Workers: 1},
		func(ctx context.Context, _ Spec, _ func(int64, int64)) (sim.Result, error) {
			close(started)
			<-ctx.Done()
			return sim.Result{}, ctx.Err()
		})
	client := NewClient(srv.URL)
	ctx := context.Background()
	v, err := client.Submit(ctx, Spec{Workloads: []string{"bzip2"}})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := client.Cancel(ctx, v.ID); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		jv, err := client.Job(ctx, v.ID)
		if err != nil {
			t.Fatal(err)
		}
		if jv.State == StateCancelled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in %s after cancel", jv.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// GET .../result on a cancelled job reports 410 Gone.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGone {
		t.Errorf("result status = %d, want 410", resp.StatusCode)
	}
}

func TestResultPendingReturns202(t *testing.T) {
	release := make(chan struct{})
	srv, _ := newTestServer(t, Options{Workers: 1},
		func(_ context.Context, _ Spec, _ func(int64, int64)) (sim.Result, error) {
			<-release
			return sim.Result{}, nil
		})
	defer close(release)
	var v JobView
	resp, err := http.Post(srv.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"workloads":["bzip2"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(srv.URL + "/v1/jobs/" + v.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("pending result status = %d, want 202", resp.StatusCode)
	}
}

func TestFailedJobResultReports422(t *testing.T) {
	srv, _ := newTestServer(t, Options{Workers: 1},
		func(context.Context, Spec, func(int64, int64)) (sim.Result, error) {
			return sim.Result{}, context.DeadlineExceeded
		})
	client := NewClient(srv.URL)
	client.PollInterval = 5 * time.Millisecond
	ctx := context.Background()
	v, err := client.Submit(ctx, Spec{Workloads: []string{"bzip2"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Result(ctx, v.ID); err == nil ||
		!strings.Contains(err.Error(), "422") {
		t.Fatalf("Result error = %v, want a 422 failure", err)
	}
}

func TestReadyzSplitFromHealthz(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	srv, m := newTestServer(t, Options{Workers: 1, AdmissionWatermark: 2},
		func(_ context.Context, spec Spec, _ func(int64, int64)) (sim.Result, error) {
			<-gate
			return sim.Result{IPC: float64(spec.Seed)}, nil
		})
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	client := NewClient(srv.URL)

	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Idle: both green, and the client helpers agree.
	if resp := get("/readyz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("idle /readyz = %d, want 200", resp.StatusCode)
	}
	if err := client.Ready(ctx); err != nil {
		t.Fatalf("Client.Ready idle: %v", err)
	}

	// Backlog at the watermark: not ready (503 + Retry-After), but
	// alive — the node is degraded, not dead, and a load balancer must
	// be able to tell. Fill to exactly the watermark: one job running
	// (off the queue) plus two queued.
	if _, err := m.Submit(uniqueSpec(1)); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, busy, _ := m.Load(); busy == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker never claimed the first job")
		}
		time.Sleep(time.Millisecond)
	}
	for seed := uint64(2); seed <= 3; seed++ {
		if _, err := m.Submit(uniqueSpec(seed)); err != nil {
			t.Fatalf("submit %d: %v", seed, err)
		}
	}
	resp := get("/readyz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("overloaded /readyz = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatalf("overloaded /readyz missing Retry-After")
	}
	if resp := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Fatalf("overloaded /healthz = %d, want 200 (alive)", resp.StatusCode)
	}
	// Client.Ready reports the instantaneous verdict instead of
	// retrying the 503 into a timeout.
	start := time.Now()
	err := client.Ready(ctx)
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("Client.Ready overloaded = %v, want 503 APIError", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("Client.Ready took %v; a probe must not retry", elapsed)
	}
}

func TestReadyzDraining(t *testing.T) {
	srv, m := newTestServer(t, Options{Workers: 1}, instantRun)
	m.StartDrain()
	resp, err := http.Get(srv.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining /readyz = %d, want 503", resp.StatusCode)
	}
	var body struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "draining" {
		t.Fatalf("status = %q, want draining", body.Status)
	}
	// Submissions now refuse with 503 + Retry-After so clients move on.
	raw, _ := json.Marshal(uniqueSpec(1))
	post, err := http.Post(srv.URL+"/v1/jobs", "application/json", strings.NewReader(string(raw)))
	if err != nil {
		t.Fatal(err)
	}
	defer post.Body.Close()
	if post.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining submit = %d, want 503", post.StatusCode)
	}
	if post.Header.Get("Retry-After") == "" {
		t.Fatalf("draining submit missing Retry-After")
	}
}
