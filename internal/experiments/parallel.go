package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/sim"
	"repro/internal/trace"
)

// runAll executes fn for every workload concurrently (each simulation is
// independent and single-threaded) and returns results in workload order.
// Every failure is reported: errors are labelled with their workload and
// aggregated with errors.Join, so a multi-workload sweep that fails on
// three benchmarks names all three.
//
// The semaphore is acquired before the goroutine is spawned, so at most
// cap(sem) goroutines (and their simulation footprints) exist at once.
// The earlier shape spawned one goroutine per workload up front and
// acquired inside, which ballooned to len(ws) goroutines on a full
// Table 3 sweep before the semaphore throttled anything.
func runAll[T any](ws []trace.Workload, fn func(trace.Workload) (T, error)) ([]T, error) {
	out := make([]T, len(ws))
	errs := make([]error, len(ws))
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	var wg sync.WaitGroup
	for i, w := range ws {
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, w trace.Workload) {
			defer wg.Done()
			defer func() { <-sem }()
			var err error
			out[i], err = fn(w)
			if err != nil {
				errs[i] = fmt.Errorf("workload %s: %w", w.Name, err)
			}
		}(i, w)
	}
	wg.Wait()
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return out, nil
}

// normPair holds the two runs a normalized-performance measurement needs.
type normPair struct {
	norm float64
	base sim.Result
	mit  sim.Result
}
