package cat

import (
	"math"

	"repro/internal/prince"
)

// ConflictExperiment reproduces the Figure 9 buckets-and-balls experiment:
// how many installs a CAT with a given number of extra ways sustains before
// an install finds both candidate sets full.
//
// The model matches the paper: the table holds Capacity items; every
// install beyond the capacity evicts a uniformly random resident entry
// first, then installs into the less-loaded candidate set. The experiment
// runs until the first conflict or MaxInstalls, whichever comes first.
type ConflictExperiment struct {
	Sets       int // sets per table (paper: 64)
	DemandWays int // paper: 14
	ExtraWays  int // paper: 1..6
	// Capacity is the target number of resident entries; defaults to
	// 2*Sets*DemandWays when zero.
	Capacity int
	// MaxInstalls bounds the experiment (0 means 1e9).
	MaxInstalls int64
	// Trials averages over this many independent runs (0 means 1).
	Trials int
	// Seed makes the experiment reproducible.
	Seed uint64
}

// ConflictResult reports the outcome of a ConflictExperiment.
type ConflictResult struct {
	// MeanInstalls is the mean number of installs before the first
	// conflict over all trials that conflicted.
	MeanInstalls float64
	// Conflicted is how many trials hit a conflict before MaxInstalls.
	Conflicted int
	// Trials is the number of runs performed.
	Trials int
}

// Run executes the Monte Carlo experiment.
func (e ConflictExperiment) Run() ConflictResult {
	capacity := e.Capacity
	if capacity == 0 {
		capacity = 2 * e.Sets * e.DemandWays
	}
	maxInstalls := e.MaxInstalls
	if maxInstalls == 0 {
		maxInstalls = 1e9
	}
	trials := e.Trials
	if trials == 0 {
		trials = 1
	}

	var sum float64
	res := ConflictResult{Trials: trials}
	for tr := 0; tr < trials; tr++ {
		rng := prince.Seeded(e.Seed + uint64(tr)*0x9e37)
		n := e.installsToConflict(rng, capacity, maxInstalls)
		if n >= 0 {
			res.Conflicted++
			sum += float64(n)
		}
	}
	if res.Conflicted > 0 {
		res.MeanInstalls = sum / float64(res.Conflicted)
	}
	return res
}

// installsToConflict simulates one run. Keys are consecutive integers mixed
// through the CAT's own hashes, i.e., random set choices per install,
// matching the buckets-and-balls abstraction. Returns -1 if no conflict
// occurred within maxInstalls.
func (e ConflictExperiment) installsToConflict(rng *prince.CTR, capacity int, maxInstalls int64) int64 {
	ways := e.DemandWays + e.ExtraWays
	t := New[struct{}](Spec{Sets: e.Sets, Ways: ways}, rng.Next())
	var nextKey uint64
	for n := int64(1); n <= maxInstalls; n++ {
		if t.Len() >= capacity {
			// Random eviction keeps residency at the target capacity.
			if key, _, ok := t.RandomEntry(rng, nil); ok {
				t.Delete(key)
			}
		}
		key := nextKey
		nextKey++
		s0, s1 := t.setIndex(0, key), t.setIndex(1, key)
		if t.invalid[0][s0] == 0 && t.invalid[1][s1] == 0 {
			return n // conflict on this install
		}
		t.Install(key, struct{}{})
	}
	return -1
}

// ExtrapolateInstalls extends measured installs-to-conflict numbers to
// higher extra-way counts using the continued-squaring behaviour of
// power-of-two-choices load (MIRAGE, equations 6-7): the per-install
// probability of a set exceeding load D+E roughly squares with each extra
// way, so log10(installs) doubles (plus a constant) per extra way.
//
// measured maps extraWays -> installs for at least two consecutive E
// values; the return maps every E in [minE, maxE] to measured or
// extrapolated installs (as log10 to avoid overflow).
func ExtrapolateInstalls(measured map[int]float64, minE, maxE int) map[int]float64 {
	out := make(map[int]float64, maxE-minE+1)
	for e, v := range measured {
		if e >= minE && e <= maxE {
			out[e] = math.Log10(v)
		}
	}
	// Find the largest measured E to anchor the extrapolation.
	anchor := -1
	for e := maxE; e >= minE; e-- {
		if _, ok := out[e]; ok {
			anchor = e
			break
		}
	}
	if anchor == -1 {
		return out
	}
	// Calibrate the squaring offset c from the last two measured points:
	// log10 N(E+1) = 2*log10 N(E) + c. Fall back to c = 0 with one point.
	c := 0.0
	if prev, ok := out[anchor-1]; ok {
		c = out[anchor] - 2*prev
	}
	for e := anchor + 1; e <= maxE; e++ {
		out[e] = 2*out[e-1] + c
	}
	return out
}
