//go:build race

package chaos

// raceEnabled lets the soaks trade sweep width for head-room: the race
// detector slows a real simulation roughly 8x on this class of machine.
const raceEnabled = true
