package sim

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

func TestPlanShards(t *testing.T) {
	for _, tc := range []struct{ cores, banks, wantG int }{
		{8, 32, 8},   // default config: 8 shards of 4 banks
		{8, 6, 6},    // bank-limited: 6 shards, cores 6 and 7 wrap around
		{3, 32, 3},   // uneven banks: 11/11/10
		{1, 32, 1},   // degenerate: one shard owns everything
		{16, 16, 16}, // one bank per shard
	} {
		p := planShards(tc.cores, tc.banks)
		if p.count != tc.wantG {
			t.Fatalf("planShards(%d,%d).count = %d, want %d", tc.cores, tc.banks, p.count, tc.wantG)
		}
		// Bank chunks are contiguous, disjoint and cover [0, banks).
		next := 0
		for g := 0; g < p.count; g++ {
			if p.bankBase[g] != next || p.bankCount[g] <= 0 {
				t.Fatalf("cores=%d banks=%d: shard %d chunk [%d,+%d) breaks coverage at %d",
					tc.cores, tc.banks, g, p.bankBase[g], p.bankCount[g], next)
			}
			next += p.bankCount[g]
		}
		if next != tc.banks {
			t.Fatalf("cores=%d banks=%d: chunks cover %d banks", tc.cores, tc.banks, next)
		}
		// Every core appears exactly once, round-robin.
		seen := make(map[int]bool)
		for g := 0; g < p.count; g++ {
			if len(p.cores[g]) == 0 {
				t.Fatalf("cores=%d banks=%d: shard %d owns no cores", tc.cores, tc.banks, g)
			}
			for _, c := range p.cores[g] {
				if seen[c] || c%p.count != g {
					t.Fatalf("cores=%d banks=%d: core %d misplaced in shard %d", tc.cores, tc.banks, c, g)
				}
				seen[c] = true
			}
		}
		if len(seen) != tc.cores {
			t.Fatalf("cores=%d banks=%d: %d cores placed", tc.cores, len(seen), tc.banks)
		}
	}
}

// parallelRun executes the standard seeded RRS case in parallel mode.
func parallelRun(t *testing.T, workers int, events *obs.Config) Result {
	t.Helper()
	w, ok := trace.ByName("hmmer")
	if !ok {
		t.Fatal("unknown workload hmmer")
	}
	cfg := testConfig()
	res, err := Run(Options{
		Config:              cfg,
		Workloads:           []trace.Workload{w},
		InstructionsPerCore: 1 << 62,
		CycleLimit:          cfg.EpochCycles,
		Seed:                3,
		Mitigation:          rrsFactory,
		Events:              events,
		Workers:             workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	res.Invariants = nil
	return res
}

// TestParallelDeterministicAcrossWorkers is the parallel mode's core
// contract: the shard decomposition is fixed by the configuration, so
// the worker count only changes scheduling — every statistic, histogram
// and epoch sample is bit-identical at -workers 1, 2 and 8.
func TestParallelDeterministicAcrossWorkers(t *testing.T) {
	base := parallelRun(t, 1, &obs.Config{RingSize: -1})
	for _, workers := range []int{2, 8} {
		got := parallelRun(t, workers, &obs.Config{RingSize: -1})
		if !reflect.DeepEqual(base, got) {
			baseJSON, _ := json.MarshalIndent(base, "", "  ")
			gotJSON, _ := json.MarshalIndent(got, "", "  ")
			t.Errorf("workers=%d diverges from workers=1\nworkers=1: %s\nworkers=%d: %s",
				workers, baseJSON, workers, gotJSON)
		}
	}
}

// TestParallelModeBasicSanity checks the merged result is a plausible
// full-system aggregate, not a single shard's: all cores retire work,
// epochs complete, and the mitigation handle is nil by contract.
func TestParallelModeBasicSanity(t *testing.T) {
	res := parallelRun(t, 4, nil)
	if res.Mitigation != nil {
		t.Error("parallel result exposes a mitigation instance")
	}
	if res.Epochs == 0 {
		t.Error("no epoch completed")
	}
	if res.Instructions == 0 || res.Accesses == 0 || res.IPC == 0 {
		t.Errorf("empty aggregate: %+v", res)
	}
	if res.SwapsPerEpoch == 0 {
		t.Error("RRS run merged to zero swaps per epoch")
	}
	if res.Energy.TotalMJ() == 0 {
		t.Error("no energy accounted")
	}
	seq, _, err := runSeq(Options{
		Config:              testConfig(),
		Workloads:           []trace.Workload{mustWorkload(t, "hmmer")},
		InstructionsPerCore: 1 << 62,
		CycleLimit:          testConfig().EpochCycles,
		Seed:                3,
		Mitigation:          rrsFactory,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The partitioned system has no cross-shard channel contention, so
	// aggregate throughput should land in the same order of magnitude as
	// the sequential reference — a coarse check that the shard configs
	// are not degenerate.
	if res.Accesses < seq.Accesses/4 || res.Accesses > seq.Accesses*4 {
		t.Errorf("parallel accesses %d implausible vs sequential %d", res.Accesses, seq.Accesses)
	}
}

func mustWorkload(t *testing.T, name string) trace.Workload {
	t.Helper()
	w, ok := trace.ByName(name)
	if !ok {
		t.Fatalf("unknown workload %s", name)
	}
	return w
}

// TestParallelParanoid runs every shard with the self-verification layer
// on: the merged summary reports all shards' checks and zero violations,
// and the statistics are bit-identical to the unchecked parallel run.
func TestParallelParanoid(t *testing.T) {
	w := mustWorkload(t, "hmmer")
	cfg := testConfig()
	opts := Options{
		Config:              cfg,
		Workloads:           []trace.Workload{w},
		InstructionsPerCore: 1 << 62,
		CycleLimit:          cfg.EpochCycles,
		Seed:                3,
		Mitigation:          rrsFactory,
		Workers:             4,
		Paranoid:            true,
	}
	checked, err := Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if checked.Invariants == nil {
		t.Fatal("paranoid parallel run carries no invariant summary")
	}
	if checked.Invariants.Violations != 0 || checked.Invariants.FirstViolation != "" {
		t.Fatalf("violations: %d (%s)", checked.Invariants.Violations, checked.Invariants.FirstViolation)
	}
	if checked.Invariants.Checks == 0 {
		t.Fatal("zero checks executed")
	}

	plain := parallelRun(t, 4, nil)
	checked.Invariants = nil
	if !reflect.DeepEqual(plain, checked) {
		t.Fatalf("paranoid mode changed parallel statistics\nplain:   %+v\nchecked: %+v", plain, checked)
	}
}

// TestParallelMaxSteps: the budget splits across shards and the typed
// sentinel still surfaces, wrapped with the failing shard's index.
func TestParallelMaxSteps(t *testing.T) {
	w := mustWorkload(t, "hmmer")
	cfg := testConfig()
	opts := Options{
		Config:              cfg,
		Workloads:           []trace.Workload{w},
		InstructionsPerCore: 1 << 62,
		CycleLimit:          cfg.EpochCycles,
		Seed:                3,
		Mitigation:          rrsFactory,
		Workers:             4,
		MaxSteps:            1000,
	}
	if _, err := Run(opts); !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}
}

// TestGoldenStatsParallel pins the parallel mode's statistics the same
// way golden_stats.json pins the sequential path's. The two goldens are
// intentionally different files: the parallel mode models a
// bank-partitioned system (see DESIGN.md §12), so its numbers diverge
// from the sequential interleave by construction. Regenerate with
//
//	go test ./internal/sim -run TestGoldenStatsParallel -update
func TestGoldenStatsParallel(t *testing.T) {
	matrix := []goldenCase{
		{Name: "none-hmmer-s3", Workload: "hmmer", Mitigation: "none", Seed: 3},
		{Name: "rrs-hmmer-s3", Workload: "hmmer", Mitigation: "rrs", Seed: 3},
		{Name: "rrs-mcf-s190", Workload: "mcf", Mitigation: "rrs", Seed: 190},
		{Name: "blockhammer-hmmer-s3", Workload: "hmmer", Mitigation: "blockhammer", Seed: 3},
	}
	path := filepath.Join("testdata", "golden_parallel.json")

	runCase := func(t *testing.T, c goldenCase) Result {
		t.Helper()
		cfg := testConfig()
		res, err := Run(Options{
			Config:              cfg,
			Workloads:           []trace.Workload{mustWorkload(t, c.Workload)},
			InstructionsPerCore: 1 << 62,
			CycleLimit:          cfg.EpochCycles,
			Seed:                c.Seed,
			Mitigation:          goldenMitigation(t, c.Mitigation),
			Workers:             2,
		})
		if err != nil {
			t.Fatal(err)
		}
		res.Invariants = nil
		return res
	}

	if *updateGolden {
		for i := range matrix {
			raw, err := json.Marshal(runCase(t, matrix[i]))
			if err != nil {
				t.Fatal(err)
			}
			matrix[i].Result = raw
		}
		out, err := json.MarshalIndent(matrix, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d cases", path, len(matrix))
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading parallel goldens (run with -update to create them): %v", err)
	}
	var want []goldenCase
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(matrix) {
		t.Fatalf("golden file has %d cases, matrix has %d — regenerate with -update", len(want), len(matrix))
	}
	for i, c := range matrix {
		c.Result = want[i].Result
		if want[i].Name != c.Name {
			t.Fatalf("golden case %d is %s, matrix expects %s — regenerate with -update", i, want[i].Name, c.Name)
		}
		t.Run(c.Name, func(t *testing.T) {
			got := runCase(t, c)
			var exp Result
			if err := json.Unmarshal(c.Result, &exp); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, exp) {
				gotJSON, _ := json.MarshalIndent(got, "", "  ")
				t.Errorf("stats diverge from parallel golden\ngot:  %s\nwant: %s", gotJSON, c.Result)
			}
		})
	}
}
