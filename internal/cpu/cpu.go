// Package cpu models the trace-driven out-of-order cores of the paper's
// evaluation (Table 2: 8 cores, 192-entry ROB, fetch/retire width 4 at
// 3.2 GHz) with a ROB-occupancy timing model: the core fetches
// instructions at full width, loads that miss the LLC occupy the ROB until
// data returns, and fetch stalls when the ROB fills behind the oldest
// outstanding load. Stores are posted and never stall retirement.
//
// This event-driven model replaces USIMM's cycle loop; relative IPC — the
// paper's figure of merit — is preserved because all memory-side queueing
// and blocking comes from the detailed memory model.
package cpu

import (
	"repro/internal/config"
	"repro/internal/trace"
)

// instPerBusCycle is how many instructions one core can retire per
// memory-bus cycle (fetch width x CPU cycles per bus cycle).
func instPerBusCycle(cfg config.Config) float64 {
	return float64(cfg.FetchWidth) * config.CPUCyclesPerBusCycle
}

// pending is an outstanding load.
type pending struct {
	pos  int64 // instruction position of the load
	done int64 // bus cycle its data arrives
}

// Core is one trace-driven core. All times are memory-bus cycles.
type Core struct {
	ID int

	reader trace.Reader
	rate   float64 // instructions per bus cycle
	rob    int64

	clock    int64 // core-local time
	pos      int64 // instructions fetched so far
	retired  int64
	loads    []pending // outstanding loads, oldest first
	nextRec  trace.Record
	haveNext bool
	done     bool

	// Budget is how many instructions the core executes before reporting
	// done (rate mode re-reads the trace until every core finishes).
	Budget int64
	// Limit optionally stops the core once its clock passes this bus
	// cycle (time-bounded runs covering a fixed number of epochs).
	Limit int64

	// Stats.
	StallCycles int64
}

// New creates a core reading its memory accesses from r.
func New(id int, cfg config.Config, r trace.Reader, budget int64) *Core {
	c := &Core{
		ID:     id,
		reader: r,
		rate:   instPerBusCycle(cfg),
		rob:    int64(cfg.ROBSize),
		Budget: budget,
	}
	c.nextRec, c.haveNext = r.Next()
	return c
}

// Done reports whether the core has retired its instruction budget.
func (c *Core) Done() bool { return c.done }

// Clock returns the core's local time in bus cycles.
func (c *Core) Clock() int64 { return c.clock }

// Instructions returns how many instructions the core has completed.
func (c *Core) Instructions() int64 { return c.pos }

// NextIssueTime returns the bus cycle at which the core's next memory
// access will be issued, considering fetch bandwidth and ROB back
// pressure. It is exact given the completions recorded so far. Returns
// false when the core has no further accesses (trace end or budget).
func (c *Core) NextIssueTime() (int64, bool) {
	if c.done || !c.haveNext {
		return 0, false
	}
	t, _ := c.issueState()
	if c.Limit > 0 && t > c.Limit {
		c.done = true
		return 0, false
	}
	return t, true
}

// issueState computes when the next record's access issues and the
// instruction position it occupies.
func (c *Core) issueState() (int64, int64) {
	target := c.pos + int64(c.nextRec.Gap) + 1 // the access is one instruction
	// Time to fetch up to target at full rate.
	t := c.clock + int64(float64(target-c.pos)/c.rate)
	// ROB: fetch cannot run further than rob instructions past the
	// oldest incomplete load.
	for _, p := range c.loads {
		if target-p.pos >= c.rob && p.done > t {
			t = p.done
		}
	}
	return t, target
}

// Issue commits the pending record: the access enters the memory system at
// the returned time. The caller must then call Complete with the memory
// completion time (for loads) or Posted (for stores).
func (c *Core) Issue() (rec trace.Record, at int64) {
	t, target := c.issueState()
	if t > c.clock {
		c.StallCycles += t - c.clock - int64(float64(target-c.pos)/c.rate)
	}
	rec = c.nextRec
	c.clock = t
	c.pos = target
	// Retire completed loads.
	keep := c.loads[:0]
	for _, p := range c.loads {
		if p.done > c.clock {
			keep = append(keep, p)
		}
	}
	c.loads = keep

	c.nextRec, c.haveNext = c.reader.Next()
	if c.Budget > 0 && c.pos >= c.Budget {
		c.done = true
	}
	return rec, t
}

// Complete records a load's data-return time.
func (c *Core) Complete(pos int64, done int64) {
	c.loads = append(c.loads, pending{pos: pos, done: done})
}

// Pos returns the instruction position of the most recently issued access.
func (c *Core) Pos() int64 { return c.pos }

// FinishTime estimates when the core retires its remaining instructions
// after the last access: remaining instructions at full rate, but not
// before the last outstanding load returns. Time-bounded cores (Limit set)
// finish at the limit — their leftover budget is not simulated.
func (c *Core) FinishTime() int64 {
	t := c.clock
	for _, p := range c.loads {
		if p.done > t {
			t = p.done
		}
	}
	if c.Budget > c.pos {
		rem := int64(float64(c.Budget-c.pos) / c.rate)
		if c.Limit > 0 && t+rem > c.Limit {
			if t < c.Limit {
				t = c.Limit
			}
			return t
		}
		t += rem
	}
	return t
}
